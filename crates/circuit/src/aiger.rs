//! ASCII AIGER (`aag`) reading and writing for [`Aig`]s.
//!
//! Supports the sequential subset of AIGER 1.9: the `aag` header, inputs,
//! latches with optional reset values, outputs, AND gates, and the symbol
//! table. Binary `aig` files, bad-state/constraint/justice sections are out
//! of scope.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::{Aig, AigLit, LatchInit};

/// Error produced when parsing an `aag` file fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseAigerError {
    line: usize,
    message: String,
}

impl ParseAigerError {
    fn new(line: usize, message: impl Into<String>) -> ParseAigerError {
        ParseAigerError {
            line,
            message: message.into(),
        }
    }

    /// The 1-based line of the error.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "aiger error on line {}: {}", self.line, self.message)
    }
}

impl Error for ParseAigerError {}

/// Writes an [`Aig`] as an ASCII AIGER (`aag`) string, including a symbol
/// table for the outputs.
///
/// Latch resets follow AIGER 1.9: `0`, `1`, or the latch's own literal for
/// an uninitialized ([`LatchInit::Free`]) latch.
///
/// # Panics
///
/// Panics if some latch has no next-state function.
pub fn write_aag(aig: &Aig) -> String {
    // Renumber: inputs first, then latches, then ANDs in index order.
    let mut var_of: HashMap<usize, usize> = HashMap::new();
    var_of.insert(0, 0); // constant
    let mut next_var = 1;
    for &id in aig.inputs() {
        var_of.insert(id, next_var);
        next_var += 1;
    }
    for &id in aig.latches() {
        var_of.insert(id, next_var);
        next_var += 1;
    }
    let mut and_nodes: Vec<usize> = Vec::new();
    for node in 0..aig.num_nodes() {
        if aig.and_fanins(node).is_some() {
            var_of.insert(node, next_var);
            and_nodes.push(node);
            next_var += 1;
        }
    }
    let lit_of = |lit: AigLit| -> usize { var_of[&lit.node()] * 2 + lit.is_inverted() as usize };

    let m = next_var - 1;
    let mut out = format!(
        "aag {m} {} {} {} {}\n",
        aig.inputs().len(),
        aig.latches().len(),
        aig.outputs().len(),
        and_nodes.len()
    );
    for &id in aig.inputs() {
        out.push_str(&format!("{}\n", var_of[&id] * 2));
    }
    for &id in aig.latches() {
        let next = aig.next_of(id).expect("latch connected");
        let own = var_of[&id] * 2;
        let reset = match aig.init_of(id).unwrap_or(LatchInit::Zero) {
            LatchInit::Zero => 0,
            LatchInit::One => 1,
            LatchInit::Free => own,
        };
        if reset == 0 {
            out.push_str(&format!("{own} {}\n", lit_of(next)));
        } else {
            out.push_str(&format!("{own} {} {reset}\n", lit_of(next)));
        }
    }
    for (_, lit) in aig.outputs() {
        out.push_str(&format!("{}\n", lit_of(*lit)));
    }
    for &node in &and_nodes {
        let (a, b) = aig.and_fanins(node).expect("node is an AND");
        // AIGER convention: lhs > rhs0 >= rhs1.
        let (mut r0, mut r1) = (lit_of(a), lit_of(b));
        if r0 < r1 {
            std::mem::swap(&mut r0, &mut r1);
        }
        out.push_str(&format!("{} {r0} {r1}\n", var_of[&node] * 2));
    }
    for (i, (name, _)) in aig.outputs().iter().enumerate() {
        out.push_str(&format!("o{i} {name}\n"));
    }
    out
}

/// Parses an ASCII AIGER (`aag`) string into an [`Aig`].
///
/// # Errors
///
/// Returns [`ParseAigerError`] on malformed headers, out-of-range literals,
/// counts that do not match the header, or AND definitions that form a cycle.
pub fn parse_aag(text: &str) -> Result<Aig, ParseAigerError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseAigerError::new(1, "empty file"))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "aag" {
        return Err(ParseAigerError::new(
            1,
            "malformed header (want `aag M I L O A`)",
        ));
    }
    let parse_num = |s: &str, line: usize| -> Result<usize, ParseAigerError> {
        s.parse()
            .map_err(|_| ParseAigerError::new(line, format!("bad number `{s}`")))
    };
    let m = parse_num(fields[1], 1)?;
    let i = parse_num(fields[2], 1)?;
    let l = parse_num(fields[3], 1)?;
    let o = parse_num(fields[4], 1)?;
    let a = parse_num(fields[5], 1)?;

    struct LatchLine {
        own_var: usize,
        next_code: usize,
        reset: usize,
    }
    struct AndLine {
        lhs_var: usize,
        rhs0: usize,
        rhs1: usize,
    }

    let mut input_vars: Vec<usize> = Vec::with_capacity(i);
    let mut latch_lines: Vec<LatchLine> = Vec::with_capacity(l);
    let mut output_codes: Vec<usize> = Vec::with_capacity(o);
    let mut and_lines: Vec<AndLine> = Vec::with_capacity(a);
    let mut symbols: HashMap<String, String> = HashMap::new();

    let mut section_counts = [i, l, o, a];
    let mut section = 0usize;
    for (lineno, raw) in lines {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if line == "c" {
            break; // comment section: ignore the rest
        }
        // Symbol table entries.
        if line.starts_with('i') || line.starts_with('l') || line.starts_with('o') {
            if let Some((key, name)) = line.split_once(' ') {
                if key.len() >= 2 && key[1..].chars().all(|c| c.is_ascii_digit()) {
                    symbols.insert(key.to_string(), name.to_string());
                    continue;
                }
            }
        }
        while section < 4 && section_counts[section] == 0 {
            section += 1;
        }
        if section == 4 {
            return Err(ParseAigerError::new(lineno, "unexpected extra line"));
        }
        section_counts[section] -= 1;
        let nums: Vec<usize> = {
            let mut v = Vec::new();
            for tok in line.split_whitespace() {
                v.push(parse_num(tok, lineno)?);
            }
            v
        };
        let check_lit = |code: usize, lineno: usize| -> Result<usize, ParseAigerError> {
            if code / 2 > m {
                Err(ParseAigerError::new(
                    lineno,
                    format!("literal {code} exceeds M"),
                ))
            } else {
                Ok(code)
            }
        };
        match section {
            0 => {
                if nums.len() != 1 || !nums[0].is_multiple_of(2) || nums[0] == 0 {
                    return Err(ParseAigerError::new(lineno, "malformed input line"));
                }
                input_vars.push(check_lit(nums[0], lineno)? / 2);
            }
            1 => {
                if !(nums.len() == 2 || nums.len() == 3)
                    || !nums[0].is_multiple_of(2)
                    || nums[0] == 0
                {
                    return Err(ParseAigerError::new(lineno, "malformed latch line"));
                }
                latch_lines.push(LatchLine {
                    own_var: check_lit(nums[0], lineno)? / 2,
                    next_code: check_lit(nums[1], lineno)?,
                    reset: if nums.len() == 3 { nums[2] } else { 0 },
                });
            }
            2 => {
                if nums.len() != 1 {
                    return Err(ParseAigerError::new(lineno, "malformed output line"));
                }
                output_codes.push(check_lit(nums[0], lineno)?);
            }
            3 => {
                if nums.len() != 3 || !nums[0].is_multiple_of(2) || nums[0] == 0 {
                    return Err(ParseAigerError::new(lineno, "malformed and line"));
                }
                and_lines.push(AndLine {
                    lhs_var: check_lit(nums[0], lineno)? / 2,
                    rhs0: check_lit(nums[1], lineno)?,
                    rhs1: check_lit(nums[2], lineno)?,
                });
            }
            _ => unreachable!(),
        }
    }
    if section_counts.iter().any(|&c| c != 0) {
        return Err(ParseAigerError::new(
            0,
            "fewer lines than the header declares",
        ));
    }

    // Build the AIG: map aag variables to AigLits.
    let mut aig = Aig::new();
    let mut lit_of_var: HashMap<usize, AigLit> = HashMap::new();
    lit_of_var.insert(0, AigLit::FALSE);
    for &v in &input_vars {
        let lit = aig.add_input();
        if lit_of_var.insert(v, lit).is_some() {
            return Err(ParseAigerError::new(0, format!("variable {v} redefined")));
        }
    }
    for line in &latch_lines {
        let init = match line.reset {
            0 => LatchInit::Zero,
            1 => LatchInit::One,
            r if r == line.own_var * 2 => LatchInit::Free,
            other => {
                return Err(ParseAigerError::new(0, format!("bad reset {other}")));
            }
        };
        let lit = aig.add_latch(init);
        if lit_of_var.insert(line.own_var, lit).is_some() {
            return Err(ParseAigerError::new(
                0,
                format!("variable {} redefined", line.own_var),
            ));
        }
    }
    // Resolve AND gates; AIGER guarantees rhs < lhs in well-formed files, but
    // be liberal: iterate until a fixed point, then fail on leftovers.
    let mut remaining: Vec<&AndLine> = and_lines.iter().collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|line| {
            let r0 = lit_of_var.get(&(line.rhs0 / 2)).copied();
            let r1 = lit_of_var.get(&(line.rhs1 / 2)).copied();
            match (r0, r1) {
                (Some(a), Some(b)) => {
                    let a = if line.rhs0 % 2 == 1 { !a } else { a };
                    let b = if line.rhs1 % 2 == 1 { !b } else { b };
                    let lit = aig.and2(a, b);
                    lit_of_var.insert(line.lhs_var, lit);
                    false
                }
                _ => true,
            }
        });
        if remaining.len() == before {
            return Err(ParseAigerError::new(
                0,
                "cyclic or dangling AND definitions",
            ));
        }
    }
    let resolve = |code: usize| -> Result<AigLit, ParseAigerError> {
        let base = lit_of_var
            .get(&(code / 2))
            .copied()
            .ok_or_else(|| ParseAigerError::new(0, format!("undefined literal {code}")))?;
        Ok(if code % 2 == 1 { !base } else { base })
    };
    for (idx, line) in latch_lines.iter().enumerate() {
        let own = lit_of_var[&line.own_var];
        aig.set_next(own, resolve(line.next_code)?);
        let _ = idx;
    }
    for (idx, &code) in output_codes.iter().enumerate() {
        let name = symbols
            .get(&format!("o{idx}"))
            .cloned()
            .unwrap_or_else(|| format!("o{idx}"));
        let lit = resolve(code)?;
        aig.add_output(&name, lit);
    }
    Ok(aig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LatchInit, Netlist};

    fn behaviourally_equal(a: &Aig, b: &Aig, steps: usize) {
        assert_eq!(a.inputs().len(), b.inputs().len());
        assert_eq!(a.latches().len(), b.latches().len());
        assert_eq!(a.outputs().len(), b.outputs().len());
        let init = |aig: &Aig| -> Vec<bool> {
            aig.latches()
                .iter()
                .map(|&l| matches!(aig.init_of(l), Some(LatchInit::One)))
                .collect()
        };
        let mut sa = init(a);
        let mut sb = init(b);
        for step in 0..steps {
            let inputs: Vec<bool> = (0..a.inputs().len()).map(|k| (step + k) % 3 == 0).collect();
            let va = a.eval_frame(&sa, &inputs);
            let vb = b.eval_frame(&sb, &inputs);
            for ((_, la), (_, lb)) in a.outputs().iter().zip(b.outputs()) {
                assert_eq!(
                    la.apply(va[la.node()]),
                    lb.apply(vb[lb.node()]),
                    "output diverged at step {step}"
                );
            }
            sa = a
                .latches()
                .iter()
                .map(|&l| {
                    let nx = a.next_of(l).unwrap();
                    nx.apply(va[nx.node()])
                })
                .collect();
            sb = b
                .latches()
                .iter()
                .map(|&l| {
                    let nx = b.next_of(l).unwrap();
                    nx.apply(vb[nx.node()])
                })
                .collect();
        }
    }

    fn sample_aig() -> Aig {
        let mut aig = Aig::new();
        let a = aig.add_input();
        let b = aig.add_input();
        let l = aig.add_latch(LatchInit::One);
        let g = aig.xor2(a, l);
        let h = aig.and2(g, !b);
        aig.set_next(l, h);
        aig.add_output("out", g);
        aig
    }

    #[test]
    fn roundtrip_preserves_behaviour() {
        let aig = sample_aig();
        let text = write_aag(&aig);
        let back = parse_aag(&text).unwrap();
        behaviourally_equal(&aig, &back, 16);
        // Output name carried through the symbol table.
        assert_eq!(back.outputs()[0].0, "out");
    }

    #[test]
    fn roundtrip_from_netlist() {
        let mut n = Netlist::new();
        let x = n.add_input("x");
        let l0 = n.add_latch("l0", LatchInit::Zero);
        let l1 = n.add_latch("l1", LatchInit::Free);
        let g = n.mux(x, l0, !l1);
        n.set_next(l0, g);
        n.set_next(l1, !g);
        n.add_output("g", g);
        let lowered = Aig::from_netlist(&n);
        let text = write_aag(&lowered.aig);
        let back = parse_aag(&text).unwrap();
        behaviourally_equal(&lowered.aig, &back, 12);
        // Free latch reset survives the roundtrip.
        let free_latches = back
            .latches()
            .iter()
            .filter(|&&l| matches!(back.init_of(l), Some(LatchInit::Free)))
            .count();
        assert_eq!(free_latches, 1);
    }

    #[test]
    fn parses_minimal_file() {
        // Single AND of two inputs.
        let text = "aag 3 2 0 1 1\n2\n4\n6\n6 4 2\n";
        let aig = parse_aag(text).unwrap();
        assert_eq!(aig.inputs().len(), 2);
        assert_eq!(aig.num_ands(), 1);
        let vals = aig.eval_frame(&[], &[true, true]);
        let (_, out) = &aig.outputs()[0];
        assert!(out.apply(vals[out.node()]));
    }

    #[test]
    fn parses_constant_output() {
        let text = "aag 0 0 0 1 0\n1\n";
        let aig = parse_aag(text).unwrap();
        assert_eq!(aig.outputs()[0].1, AigLit::TRUE);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(parse_aag("aig 1 1 0 0 0\n2\n").is_err());
        assert!(parse_aag("aag 1 1\n").is_err());
    }

    #[test]
    fn rejects_truncated_file() {
        let err = parse_aag("aag 2 2 0 0 0\n2\n").unwrap_err();
        assert!(err.to_string().contains("fewer lines"));
    }

    #[test]
    fn rejects_out_of_range_literal() {
        let err = parse_aag("aag 1 0 0 1 0\n99\n").unwrap_err();
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn comment_section_is_ignored() {
        let text = "aag 1 1 0 1 0\n2\n2\nc\nanything goes here\n";
        let aig = parse_aag(text).unwrap();
        assert_eq!(aig.inputs().len(), 1);
    }
}
