//! Sequential gate-level circuits for the `refined-bmc` workspace.
//!
//! BMC (the `rbmc-core` crate) checks invariants of *models*
//! `⟨V, W, I, T⟩` — registers, inputs, an initial-state predicate, and a
//! transition relation. This crate provides the concrete representation of
//! such models and every operation the pipeline needs:
//!
//! - [`Netlist`]: a multi-operator sequential netlist (inputs, latches with
//!   initial values, n-ary AND/OR/XOR, MUX) with signal-level negation,
//!   light constant folding, and well-formedness validation.
//! - [`sim`]: a cycle-accurate two-valued simulator, used as the test oracle
//!   and to replay BMC counterexample traces.
//! - [`coi`]: cone-of-influence analysis and reduction.
//! - [`preprocess`]: the engine-path structural pass — constant sweeping,
//!   structural hashing, and COI restriction to a fixpoint, with maps for
//!   lifting traces back to original coordinates.
//! - [`Aig`]: an and-inverter-graph form with structural hashing, plus
//!   lowering from [`Netlist`].
//! - [`blif`] and [`aiger`]: readers/writers for the two interchange formats
//!   of the paper's era (VIS consumed BLIF; AIGER is the modern equivalent).
//!
//! # Examples
//!
//! A 2-bit counter with an overflow flag:
//!
//! ```
//! use rbmc_circuit::{LatchInit, Netlist};
//!
//! let mut n = Netlist::new();
//! let b0 = n.add_latch("b0", LatchInit::Zero);
//! let b1 = n.add_latch("b1", LatchInit::Zero);
//! // b0' = !b0; b1' = b1 ^ b0.
//! n.set_next(b0, !b0);
//! let sum = n.xor2(b1, b0);
//! n.set_next(b1, sum);
//! let overflow = n.and2(b0, b1);
//! n.add_output("overflow", overflow);
//! n.validate().expect("well-formed");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod aiger;
pub mod blif;
pub mod coi;
pub mod lint;
pub mod preprocess;
pub mod sim;
pub mod stats;

mod aig;
mod netlist;

pub use aig::{Aig, AigLit, AigToNetlist, NetlistToAig};
pub use netlist::{GateOp, LatchInit, Netlist, NetlistError, Node, NodeId, Signal};
