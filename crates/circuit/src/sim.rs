//! Cycle-accurate two-valued simulation.
//!
//! The simulator is the ground-truth oracle of the workspace: BMC
//! counterexamples are replayed on it, and the explicit-state reachability
//! oracle in `rbmc-core` steps it exhaustively.

use crate::{GateOp, LatchInit, Netlist, Node, Signal};

/// Evaluates all node values for one time frame, given current latch values
/// and input values.
///
/// `latch_values` and `input_values` are consulted in the creation order of
/// [`Netlist::latches`] / [`Netlist::inputs`]. The result is indexed by
/// [`NodeId::index`](crate::NodeId::index).
///
/// # Panics
///
/// Panics if a value vector is shorter than the corresponding node list, or
/// if the netlist has combinational cycles.
pub fn eval_frame(netlist: &Netlist, latch_values: &[bool], input_values: &[bool]) -> Vec<bool> {
    let latches = netlist.latches();
    let inputs = netlist.inputs();
    assert_eq!(latch_values.len(), latches.len(), "latch value count");
    assert_eq!(input_values.len(), inputs.len(), "input value count");
    let mut values = vec![false; netlist.num_nodes()];
    for (id, &v) in latches.iter().zip(latch_values) {
        values[id.index()] = v;
    }
    for (id, &v) in inputs.iter().zip(input_values) {
        values[id.index()] = v;
    }
    for id in netlist.topo_order() {
        if let Node::Gate { op, fanins } = netlist.node(id) {
            let read = |s: Signal| s.apply(values[s.node().index()]);
            values[id.index()] = match op {
                GateOp::And => fanins.iter().all(|&s| read(s)),
                GateOp::Or => fanins.iter().any(|&s| read(s)),
                GateOp::Xor => fanins.iter().filter(|&&s| read(s)).count() % 2 == 1,
                GateOp::Mux => {
                    if read(fanins[0]) {
                        read(fanins[1])
                    } else {
                        read(fanins[2])
                    }
                }
            };
        }
    }
    values
}

/// Reads a signal out of a node-value vector produced by [`eval_frame`].
pub fn read_signal(values: &[bool], signal: Signal) -> bool {
    signal.apply(values[signal.node().index()])
}

/// A stepping simulator holding the current register state.
///
/// # Examples
///
/// A toggle flip-flop:
///
/// ```
/// use rbmc_circuit::sim::Simulator;
/// use rbmc_circuit::{LatchInit, Netlist};
///
/// let mut n = Netlist::new();
/// let t = n.add_latch("t", LatchInit::Zero);
/// n.set_next(t, !t);
/// n.add_output("t", t);
///
/// let mut sim = Simulator::new(&n);
/// assert_eq!(sim.output_values(&[]), vec![false]);
/// sim.step(&[]);
/// assert_eq!(sim.output_values(&[]), vec![true]);
/// sim.step(&[]);
/// assert_eq!(sim.output_values(&[]), vec![false]);
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    state: Vec<bool>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with every latch at its initial value
    /// ([`LatchInit::Free`] latches start at 0).
    pub fn new(netlist: &'a Netlist) -> Simulator<'a> {
        let state = netlist
            .latches()
            .iter()
            .map(|&id| match netlist.node(id) {
                Node::Latch { init, .. } => matches!(init, LatchInit::One),
                _ => unreachable!("latches() returns latches"),
            })
            .collect();
        Simulator { netlist, state }
    }

    /// Creates a simulator starting from an explicit register state (in
    /// [`Netlist::latches`] order).
    pub fn with_state(netlist: &'a Netlist, state: Vec<bool>) -> Simulator<'a> {
        assert_eq!(state.len(), netlist.num_latches(), "state width");
        Simulator { netlist, state }
    }

    /// Current register state (in [`Netlist::latches`] order).
    pub fn state(&self) -> &[bool] {
        &self.state
    }

    /// Evaluates the whole frame under `inputs` without advancing time.
    pub fn frame_values(&self, inputs: &[bool]) -> Vec<bool> {
        eval_frame(self.netlist, &self.state, inputs)
    }

    /// Values of the declared outputs under `inputs` (current frame).
    pub fn output_values(&self, inputs: &[bool]) -> Vec<bool> {
        let values = self.frame_values(inputs);
        self.netlist
            .outputs()
            .iter()
            .map(|&(_, s)| read_signal(&values, s))
            .collect()
    }

    /// Advances one clock cycle under `inputs`, returning the frame values
    /// that were latched from.
    pub fn step(&mut self, inputs: &[bool]) -> Vec<bool> {
        let values = self.frame_values(inputs);
        let mut next_state = Vec::with_capacity(self.state.len());
        for &id in &self.netlist.latches() {
            match self.netlist.node(id) {
                Node::Latch {
                    next: Some(next), ..
                } => next_state.push(read_signal(&values, *next)),
                _ => panic!("latch {id:?} not connected (validate the netlist)"),
            }
        }
        self.state = next_state;
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3-bit ripple counter netlist.
    fn counter3() -> (Netlist, Vec<Signal>) {
        let mut n = Netlist::new();
        let bits: Vec<Signal> = (0..3)
            .map(|i| n.add_latch(&format!("b{i}"), LatchInit::Zero))
            .collect();
        let next = n.bus_increment(&bits);
        for (&b, &nx) in bits.iter().zip(&next) {
            n.set_next(b, nx);
        }
        (n, bits)
    }

    fn state_as_u8(sim: &Simulator<'_>) -> u8 {
        sim.state()
            .iter()
            .enumerate()
            .map(|(i, &b)| (b as u8) << i)
            .sum()
    }

    #[test]
    fn counter_counts() {
        let (n, _) = counter3();
        n.validate().unwrap();
        let mut sim = Simulator::new(&n);
        for expected in 0..20u8 {
            assert_eq!(state_as_u8(&sim), expected % 8);
            sim.step(&[]);
        }
    }

    #[test]
    fn init_one_latches_start_high() {
        let mut n = Netlist::new();
        let l = n.add_latch("l", LatchInit::One);
        n.set_next(l, l);
        let sim = Simulator::new(&n);
        assert_eq!(sim.state(), &[true]);
    }

    #[test]
    fn inputs_drive_logic() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let l = n.add_latch("l", LatchInit::Zero);
        let d = n.and2(a, b);
        n.set_next(l, d);
        n.add_output("q", l);
        let mut sim = Simulator::new(&n);
        sim.step(&[true, true]);
        assert_eq!(sim.output_values(&[false, false]), vec![true]);
        sim.step(&[true, false]);
        assert_eq!(sim.output_values(&[false, false]), vec![false]);
    }

    #[test]
    fn gate_semantics_match_truth_tables() {
        let mut n = Netlist::new();
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let and3 = n.and_many(&[a, b, c]);
        let or3 = n.or_many(&[a, b, c]);
        let xor3 = n.xor_many(&[a, b, c]);
        let mx = n.mux(a, b, c);
        for bits in 0..8u8 {
            let inputs = [bits & 1 == 1, bits & 2 != 0, bits & 4 != 0];
            let values = eval_frame(&n, &[], &inputs);
            let (x, y, z) = (inputs[0], inputs[1], inputs[2]);
            assert_eq!(read_signal(&values, and3), x && y && z);
            assert_eq!(read_signal(&values, or3), x || y || z);
            assert_eq!(read_signal(&values, xor3), x ^ y ^ z);
            assert_eq!(read_signal(&values, mx), if x { y } else { z });
        }
    }

    #[test]
    fn bus_add_matches_arithmetic() {
        let mut n = Netlist::new();
        let a: Vec<Signal> = (0..4).map(|i| n.add_input(&format!("a{i}"))).collect();
        let b: Vec<Signal> = (0..4).map(|i| n.add_input(&format!("b{i}"))).collect();
        let sum = n.bus_add(&a, &b);
        for x in 0..16u8 {
            for y in 0..16u8 {
                let mut inputs = Vec::new();
                inputs.extend((0..4).map(|i| x >> i & 1 == 1));
                inputs.extend((0..4).map(|i| y >> i & 1 == 1));
                let values = eval_frame(&n, &[], &inputs);
                let got: u8 = sum
                    .iter()
                    .enumerate()
                    .map(|(i, &s)| (read_signal(&values, s) as u8) << i)
                    .sum();
                assert_eq!(got, x.wrapping_add(y) & 0xF, "{x} + {y}");
            }
        }
    }

    #[test]
    fn with_state_resumes() {
        let (n, _) = counter3();
        let mut sim = Simulator::with_state(&n, vec![true, false, true]); // 5
        assert_eq!(state_as_u8(&sim), 5);
        sim.step(&[]);
        assert_eq!(state_as_u8(&sim), 6);
    }
}
