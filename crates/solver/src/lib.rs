//! A Chaff-style CDCL SAT solver with refinable decision ordering and
//! unsatisfiable-core extraction.
//!
//! This crate reproduces the solver side of *"Refining the SAT Decision
//! Ordering for Bounded Model Checking"* (DAC 2004):
//!
//! - **DLL/CDCL search** (paper Fig. 1): watched-literal Boolean constraint
//!   propagation, first-UIP conflict analysis, non-chronological backtracking,
//!   Luby restarts, and periodic deletion of irrelevant learned clauses —
//!   the behaviour of Chaff that §3.1 works around.
//! - **Literal-based VSIDS** exactly as §3.3 describes Chaff's heuristic:
//!   every literal carries `cha_score(l)`, initialized to its literal count in
//!   the original CNF and periodically updated to
//!   `cha_score(l)/2 + new_lit_counts(l)`.
//! - **Simplified Conflict Dependency Graph** (§3.1): every learned clause is
//!   represented in the CDG by a pseudo-ID plus the IDs of its antecedent
//!   clauses. Deleting learned clause *bodies* does not break the CDG, so a
//!   complete unsatisfiable core is always recoverable.
//! - **Refined decision ordering** (§3.3): an externally supplied per-variable
//!   `bmc_score` can be combined with `cha_score` in a *static* mode
//!   (`bmc_score` primary, `cha_score` tiebreaker throughout) or a *dynamic*
//!   mode (static until `#decisions > #original_literals / divisor`, then
//!   fall back to pure VSIDS).
//!
//! # Examples
//!
//! ```
//! use rbmc_cnf::parse_dimacs;
//! use rbmc_solver::{Solver, SolveResult};
//!
//! // (x1 ∨ x2) ∧ (¬x1 ∨ x2) ∧ (¬x2) is unsatisfiable: the last two clauses
//! // force x2 = false and x1 = false, falsifying the first clause.
//! let f = parse_dimacs("p cnf 2 3\n1 2 0\n-1 2 0\n-2 0\n")?;
//! let mut solver = Solver::from_formula(&f);
//! assert_eq!(solver.solve(), SolveResult::Unsat);
//! let core = solver.core_clauses().expect("core is available after UNSAT");
//! assert!(!core.is_empty());
//! # Ok::<(), rbmc_cnf::ParseDimacsError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arena;
mod cdg;
mod lbool;
mod limits;
mod order;
mod proof;
mod reference;
mod solver;
mod stats;

pub use lbool::LBool;
pub use limits::{CancelFlag, Limits};
pub use order::{ranking_decision_order, OrderMode};
pub use proof::{ProofAuditSnapshot, ProofLog};
pub use reference::{brute_force_sat, reference_dpll};
pub use solver::{SolveResult, Solver, SolverOptions};
pub use stats::SolverStats;
