//! Decision ordering: Chaff's literal-based VSIDS combined with the
//! externally supplied `bmc_score` ranking (paper §3.3).
//!
//! Every literal `l` carries `cha_score(l)`, initialized to its literal count
//! in the original CNF. After every `halve_interval` conflicts the solver
//! applies `cha_score(l) = cha_score(l) / 2 + new_lit_counts(l)` where
//! `new_lit_counts(l)` is the number of conflict clauses learned since the
//! last update that contain `l`.
//!
//! The BMC refinement supplies a per-variable `bmc_score`. In the **static**
//! configuration the decision key is `(bmc_score, cha_score)` throughout; in
//! the **dynamic** configuration it starts that way and collapses to
//! `(0, cha_score)` — pure VSIDS — once the number of decisions exceeds
//! `#original_literals / divisor` (the paper uses 64).
//!
//! Scores only change at halving boundaries, at BMC-rank installation, and at
//! the dynamic switch, so the max-heap caches its keys and is rebuilt whole at
//! those (rare) points.

use rbmc_cnf::{Lit, Var};

use crate::LBool;

/// How the decision ordering combines `bmc_score` and `cha_score` (§3.3).
///
/// # Examples
///
/// ```
/// use rbmc_solver::OrderMode;
///
/// let mode = OrderMode::Dynamic { divisor: 64 };
/// assert_ne!(mode, OrderMode::Standard);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum OrderMode {
    /// Chaff's default: sort exclusively by `cha_score` (VSIDS).
    #[default]
    Standard,
    /// Paper's static configuration: `bmc_score` primary, `cha_score`
    /// tiebreaker, for the whole solve.
    Static,
    /// Paper's dynamic configuration: like [`OrderMode::Static`] until the
    /// number of decisions exceeds `#original_literals / divisor`, then pure
    /// VSIDS. The paper fixes `divisor = 64`.
    Dynamic {
        /// Denominator of the decision-count threshold.
        divisor: u32,
    },
}

/// The full decision sequence a per-variable BMC ranking induces under the
/// static configuration, on a fresh solver with no VSIDS activity: every
/// literal of the first `num_vars` variables, best key first
/// (`bmc_score` primary, literal code tiebreak).
///
/// This is the observable the ranking ultimately exists to shape — two rank
/// tables are interchangeable for the paper's heuristic exactly when they
/// induce the same sequence. Differential tests use it to show that
/// commutative (relaxed-parallel) core-merge orders leave the decision
/// ordering untouched.
///
/// # Examples
///
/// ```
/// use rbmc_solver::ranking_decision_order;
///
/// // Variable 1 outranks variable 0; within a variable the positive
/// // literal's code is lower, so it comes first.
/// let order = ranking_decision_order(&[1, 7], 2);
/// assert_eq!(order.len(), 4);
/// assert_eq!(order[0].var().index(), 1);
/// ```
///
/// # Panics
///
/// Panics if `scores.len() > num_vars`.
pub fn ranking_decision_order(scores: &[u64], num_vars: usize) -> Vec<Lit> {
    let mut order = LitOrder::new(num_vars);
    for i in 0..num_vars {
        order.mark_active(Var::new(i));
    }
    order.set_bmc_scores(scores, true);
    let free = vec![LBool::Undef; num_vars];
    order.rebuild(&free);
    let mut sequence = Vec::with_capacity(2 * num_vars);
    while let Some(lit) = order.pop_best(&free) {
        sequence.push(lit);
    }
    sequence
}

/// The decision key of a literal: primary score, secondary score, and a
/// deterministic tiebreaker (lower literal code wins).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Key {
    primary: u64,
    secondary: u64,
    code: u32,
}

impl Key {
    /// Total order: larger scores first; between equal scores, the literal
    /// with the *smaller* code is considered greater (deterministic and
    /// stable across runs).
    fn beats(&self, other: &Key) -> bool {
        (self.primary, self.secondary, std::cmp::Reverse(self.code))
            > (
                other.primary,
                other.secondary,
                std::cmp::Reverse(other.code),
            )
    }
}

/// Indexed binary max-heap over literals with cached keys.
///
/// Keys are recomputed wholesale by [`LitOrder::rebuild`]; between rebuilds
/// they are frozen, which mirrors Chaff's "sort periodically" behaviour.
pub(crate) struct LitOrder {
    /// Heap of literal codes, ordered by `key`.
    heap: Vec<u32>,
    /// `pos[code]` = index in `heap`, or `NOT_IN_HEAP`.
    pos: Vec<u32>,
    /// Cached decision key per literal code.
    key: Vec<Key>,
    /// Current `cha_score` per literal code.
    cha: Vec<u64>,
    /// Conflict-clause literal counts since the last halving.
    new_counts: Vec<u64>,
    /// Externally supplied per-variable ranking (the BMC refinement).
    bmc: Vec<u64>,
    /// Whether `bmc` participates as the primary key.
    use_bmc: bool,
    /// Whether the variable occurs in some clause. Reserved-but-unused
    /// variables (an incremental session reserves the whole future variable
    /// range up front) are never decision candidates: no clause constrains
    /// them, so any model extends to them trivially.
    active: Vec<bool>,
}

const NOT_IN_HEAP: u32 = u32::MAX;

impl std::fmt::Debug for LitOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LitOrder")
            .field("len", &self.heap.len())
            .field("use_bmc", &self.use_bmc)
            .finish()
    }
}

impl LitOrder {
    /// Creates an ordering over `num_vars` variables with all-zero scores.
    pub(crate) fn new(num_vars: usize) -> LitOrder {
        let n = 2 * num_vars;
        LitOrder {
            heap: Vec::with_capacity(n),
            pos: vec![NOT_IN_HEAP; n],
            key: vec![
                Key {
                    primary: 0,
                    secondary: 0,
                    code: 0
                };
                n
            ],
            cha: vec![0; n],
            new_counts: vec![0; n],
            bmc: vec![0; num_vars],
            use_bmc: false,
            active: vec![false; num_vars],
        }
    }

    /// Grows the ordering to cover `num_vars` variables.
    pub(crate) fn grow(&mut self, num_vars: usize) {
        let n = 2 * num_vars;
        if n <= self.pos.len() {
            return;
        }
        self.pos.resize(n, NOT_IN_HEAP);
        self.key.resize(
            n,
            Key {
                primary: 0,
                secondary: 0,
                code: 0,
            },
        );
        self.cha.resize(n, 0);
        self.new_counts.resize(n, 0);
        self.bmc.resize(num_vars, 0);
        self.active.resize(num_vars, false);
    }

    /// Number of variables covered.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn num_vars(&self) -> usize {
        self.bmc.len()
    }

    /// Marks a variable as occurring in some clause, making it a decision
    /// candidate at the next [`LitOrder::rebuild`] (and at backtracking
    /// reinsertion).
    pub(crate) fn mark_active(&mut self, var: Var) {
        self.active[var.index()] = true;
    }

    /// Adds `delta` to the initial `cha_score` of `lit` (used while loading
    /// the original formula: the initial value is the literal count). Also
    /// marks the literal's variable active.
    pub(crate) fn add_initial_count(&mut self, lit: Lit, delta: u64) {
        self.cha[lit.code()] += delta;
        self.mark_active(lit.var());
    }

    /// Records the literals of a newly learned conflict clause
    /// (`new_lit_counts` in the paper).
    pub(crate) fn on_learned_clause(&mut self, lits: &[Lit]) {
        for lit in lits {
            self.new_counts[lit.code()] += 1;
        }
    }

    /// Installs the per-variable BMC ranking and enables/disables its use as
    /// the primary key. Callers must [`LitOrder::rebuild`] afterwards.
    pub(crate) fn set_bmc_scores(&mut self, scores: &[u64], use_bmc: bool) {
        assert!(
            scores.len() <= self.bmc.len(),
            "rank table larger than variable range"
        );
        self.bmc[..scores.len()].copy_from_slice(scores);
        for slot in &mut self.bmc[scores.len()..] {
            *slot = 0;
        }
        self.use_bmc = use_bmc;
    }

    /// Returns whether `bmc_score` is currently the primary key.
    pub(crate) fn uses_bmc(&self) -> bool {
        self.use_bmc
    }

    /// Switches to pure VSIDS (the dynamic fallback). Callers must
    /// [`LitOrder::rebuild`] afterwards.
    pub(crate) fn disable_bmc(&mut self) {
        self.use_bmc = false;
    }

    /// Applies the periodic update `cha = cha/2 + new_counts` and clears the
    /// per-period counters. Callers must [`LitOrder::rebuild`] afterwards.
    pub(crate) fn halve_scores(&mut self) {
        for (score, fresh) in self.cha.iter_mut().zip(self.new_counts.iter_mut()) {
            *score = *score / 2 + *fresh;
            *fresh = 0;
        }
    }

    /// Recomputes every key and rebuilds the heap from the literals of
    /// active variables unassigned in `values` (indexed by variable).
    pub(crate) fn rebuild(&mut self, values: &[LBool]) {
        for code in 0..self.key.len() {
            self.key[code] = self.make_key(code);
        }
        self.heap.clear();
        for p in &mut self.pos {
            *p = NOT_IN_HEAP;
        }
        for code in 0..self.key.len() {
            let lit = Lit::from_code(code);
            let v = lit.var().index();
            if self.active[v] && values[v].is_undef() {
                self.pos[code] = self.heap.len() as u32;
                self.heap.push(code as u32);
            }
        }
        if !self.heap.is_empty() {
            for i in (0..self.heap.len() / 2).rev() {
                self.sift_down(i);
            }
        }
    }

    fn make_key(&self, code: usize) -> Key {
        let var_index = code >> 1;
        Key {
            primary: if self.use_bmc { self.bmc[var_index] } else { 0 },
            secondary: self.cha[code],
            code: code as u32,
        }
    }

    /// Inserts both literals of `var` (if absent and the variable is
    /// active). Called when a variable is unassigned during backtracking.
    pub(crate) fn reinsert_var(&mut self, var: Var) {
        if !self.active[var.index()] {
            return;
        }
        for lit in [var.positive(), var.negative()] {
            let code = lit.code();
            if self.pos[code] == NOT_IN_HEAP {
                self.pos[code] = self.heap.len() as u32;
                self.heap.push(code as u32);
                self.sift_up(self.heap.len() - 1);
            }
        }
    }

    /// Pops the unassigned literal with the greatest key (according to
    /// `values`, indexed by variable).
    ///
    /// Literals of assigned variables encountered on the way are discarded
    /// (they are reinserted by [`LitOrder::reinsert_var`] when unassigned).
    pub(crate) fn pop_best(&mut self, values: &[LBool]) -> Option<Lit> {
        while let Some(&top) = self.heap.first() {
            let lit = Lit::from_code(top as usize);
            self.remove_top();
            if values[lit.var().index()].is_undef() {
                return Some(lit);
            }
        }
        None
    }

    fn remove_top(&mut self) {
        let top = self.heap[0];
        self.pos[top as usize] = NOT_IN_HEAP;
        let last = self.heap.pop().expect("heap is nonempty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            let (ci, cp) = (self.heap[i] as usize, self.heap[parent] as usize);
            if self.key[ci].beats(&self.key[cp]) {
                self.heap.swap(i, parent);
                self.pos[ci] = parent as u32;
                self.pos[cp] = i as u32;
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let left = 2 * i + 1;
            let right = 2 * i + 2;
            let mut best = i;
            if left < self.heap.len()
                && self.key[self.heap[left] as usize].beats(&self.key[self.heap[best] as usize])
            {
                best = left;
            }
            if right < self.heap.len()
                && self.key[self.heap[right] as usize].beats(&self.key[self.heap[best] as usize])
            {
                best = right;
            }
            if best == i {
                break;
            }
            let (ci, cb) = (self.heap[i] as usize, self.heap[best] as usize);
            self.heap.swap(i, best);
            self.pos[ci] = best as u32;
            self.pos[cb] = i as u32;
            i = best;
        }
    }

    /// Exposes the current `cha_score` of a literal (tests, diagnostics).
    #[cfg(test)]
    pub(crate) fn cha_score(&self, lit: Lit) -> u64 {
        self.cha[lit.code()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(n: i64) -> Lit {
        Lit::from_dimacs(n)
    }

    /// All `n` variables unassigned.
    fn free(n: usize) -> Vec<LBool> {
        vec![LBool::Undef; n]
    }

    #[test]
    fn pop_order_follows_cha_scores() {
        let mut ord = LitOrder::new(3);
        let v = free(3);
        ord.add_initial_count(lit(1), 5);
        ord.add_initial_count(lit(-2), 9);
        ord.add_initial_count(lit(3), 1);
        ord.rebuild(&v);
        assert_eq!(ord.pop_best(&v), Some(lit(-2)));
        assert_eq!(ord.pop_best(&v), Some(lit(1)));
        assert_eq!(ord.pop_best(&v), Some(lit(3)));
    }

    #[test]
    fn bmc_score_takes_priority_in_static_mode() {
        let mut ord = LitOrder::new(2);
        let v = free(2);
        ord.add_initial_count(lit(1), 100); // huge cha score
        ord.add_initial_count(lit(2), 1);
        ord.set_bmc_scores(&[0, 50], true); // but var 1 is ranked
        ord.rebuild(&v);
        // Both phases of the ranked variable come before the unranked one.
        let first = ord.pop_best(&v).unwrap();
        assert_eq!(first.var(), Var::new(1));
    }

    #[test]
    fn disabling_bmc_restores_vsids() {
        let mut ord = LitOrder::new(2);
        let v = free(2);
        ord.add_initial_count(lit(1), 100);
        ord.mark_active(Var::new(1));
        ord.set_bmc_scores(&[0, 50], true);
        ord.rebuild(&v);
        assert_eq!(ord.pop_best(&v).unwrap().var(), Var::new(1));
        ord.disable_bmc();
        ord.rebuild(&v);
        assert_eq!(ord.pop_best(&v), Some(lit(1)));
    }

    #[test]
    fn halving_applies_paper_formula() {
        let mut ord = LitOrder::new(1);
        ord.add_initial_count(lit(1), 9);
        ord.on_learned_clause(&[lit(1)]);
        ord.on_learned_clause(&[lit(1)]);
        ord.halve_scores();
        // 9/2 + 2 = 6 (integer division).
        assert_eq!(ord.cha_score(lit(1)), 6);
        // Counts are cleared after the update.
        ord.halve_scores();
        assert_eq!(ord.cha_score(lit(1)), 3);
    }

    #[test]
    fn pop_skips_assigned_vars() {
        let mut ord = LitOrder::new(2);
        ord.add_initial_count(lit(1), 10);
        ord.add_initial_count(lit(2), 5);
        let mut v = free(2);
        ord.rebuild(&v);
        // Variable 0 is assigned: its two literals are discarded.
        v[0] = LBool::True;
        let got = ord.pop_best(&v).unwrap();
        assert_eq!(got, lit(2));
    }

    #[test]
    fn reinsert_makes_var_poppable_again() {
        let mut ord = LitOrder::new(2);
        let v = free(2);
        ord.add_initial_count(lit(1), 10);
        ord.rebuild(&v);
        // Discard everything.
        while ord.pop_best(&v).is_some() {}
        assert_eq!(ord.pop_best(&v), None);
        ord.reinsert_var(Var::new(0));
        assert_eq!(ord.pop_best(&v), Some(lit(1)));
    }

    #[test]
    fn deterministic_tiebreak_prefers_smaller_code() {
        let mut ord = LitOrder::new(3);
        let v = free(3);
        for i in 0..3 {
            ord.mark_active(Var::new(i));
        }
        ord.rebuild(&v);
        // All scores equal: positive literal of variable 0 first.
        assert_eq!(ord.pop_best(&v), Some(Var::new(0).positive()));
        assert_eq!(ord.pop_best(&v), Some(Var::new(0).negative()));
        assert_eq!(ord.pop_best(&v), Some(Var::new(1).positive()));
    }

    #[test]
    fn grow_extends_tables() {
        let mut ord = LitOrder::new(1);
        ord.grow(4);
        let v = free(4);
        assert_eq!(ord.num_vars(), 4);
        ord.add_initial_count(lit(4), 3);
        ord.rebuild(&v);
        let mut seen = Vec::new();
        while let Some(l) = ord.pop_best(&v) {
            seen.push(l);
        }
        // Only the active (occurring) variable's literals are candidates.
        assert_eq!(seen, vec![lit(4), lit(-4)]);
    }

    #[test]
    fn inactive_vars_are_never_candidates() {
        let mut ord = LitOrder::new(3);
        let v = free(3);
        ord.add_initial_count(lit(2), 1);
        ord.rebuild(&v);
        assert_eq!(ord.pop_best(&v), Some(lit(2)));
        assert_eq!(ord.pop_best(&v), Some(lit(-2)));
        assert_eq!(ord.pop_best(&v), None);
        // Reinsertion of an inactive variable is a no-op.
        ord.reinsert_var(Var::new(0));
        assert_eq!(ord.pop_best(&v), None);
        ord.reinsert_var(Var::new(1));
        assert_eq!(ord.pop_best(&v), Some(lit(2)));
    }
}
