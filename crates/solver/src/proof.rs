//! Clause-level proof logging: the solver-side half of the DRAT/LRAT
//! certificate machinery.
//!
//! A [`ProofLog`] attached to a [`Solver`](crate::Solver) receives every
//! event a clausal proof checker needs to replay the run:
//!
//! - **axioms** — every original clause, in `add_clause` order (the input
//!   formula the certificate is *about*);
//! - **derived clauses** — every learned clause and every root-level unit
//!   fact, each with LRAT-style antecedent hints sourced from the conflict
//!   dependency graph (§3.1): the hint list names earlier proof lines whose
//!   sequential unit propagation under the negated clause yields a conflict,
//!   which is exactly the RUP property;
//! - **deletions** — every learned clause removed by database reduction
//!   (root-satisfied removal and the activity-ranked half), emitted *before*
//!   compaction frees the body, so the log mirrors the live clause set at
//!   every point in time;
//! - **episode finals** — each UNSAT answer of the incremental session API
//!   closes with a final clause that is not added to the database: the
//!   negation of the failed assumptions (an assumption episode), or the
//!   empty clause (the database is unsatisfiable outright). Together with
//!   the cumulative log up to that point, the final clause is a
//!   self-contained certificate for that episode's verdict.
//!
//! Hints are emitted in **propagation order** (reverse of the conflict
//! analysis walk, deduplicated): a strict LRAT checker can process them
//! sequentially, requiring each cited clause to be unit until the last one
//! conflicts. The independent checker lives in the `rbmc-proof` crate, which
//! deliberately depends only on `rbmc-cnf` — implementations of this trait
//! bridge the two without the checker ever seeing solver internals.
//!
//! Proof logging requires CDG recording (the hints are the CDG antecedent
//! lists) and must be attached before the first clause so every clause in
//! the database has a proof line; [`Solver::set_proof_log`] enforces both.
//!
//! [`Solver::set_proof_log`]: crate::Solver::set_proof_log

use rbmc_cnf::Lit;

/// A sink for the solver's clausal proof events. See the module docs for
/// the event vocabulary and ordering guarantees.
///
/// The `Send` supertrait keeps a [`Solver`](crate::Solver) with an attached
/// log transferable across threads, which the relaxed parallel BMC modes
/// rely on.
pub trait ProofLog: Send {
    /// An original clause entered the database. `id` is the clause's proof
    /// line number (one shared sequence with derived clauses, strictly
    /// increasing); `lits` is the clause as given.
    fn axiom(&mut self, id: u64, lits: &[Lit]);

    /// A clause was derived: a learned conflict clause, or a root-level
    /// unit fact (emitted as a one-literal clause so later hints can cite
    /// it). `hints` names earlier proof lines in propagation order; under
    /// the negation of `lits`, propagating them sequentially conflicts.
    fn derived(&mut self, id: u64, lits: &[Lit], hints: &[u64]);

    /// The derived clause with proof line `id` left the database (learned
    /// clause deletion). Deleted lines must no longer be cited by later
    /// hints.
    fn delete(&mut self, id: u64);

    /// The current solve episode ended UNSAT with this final clause —
    /// the negation of the failed assumptions, or empty when the database
    /// itself is unsatisfiable. The clause is *not* added to the database;
    /// `hints` justify it exactly as in [`ProofLog::derived`].
    fn finalize(&mut self, lits: &[Lit], hints: &[u64]);

    /// A snapshot of the log's live-line bookkeeping for coherence audits
    /// (see the `debug-invariants` feature), or `None` when the
    /// implementation does not track one. The default tracks none.
    fn audit_snapshot(&self) -> Option<ProofAuditSnapshot> {
        None
    }
}

/// What a [`ProofLog`] implementation knows about its own live lines, for
/// cross-checking against the solver's clause database: every live learned
/// clause and every root-level unit fact must have an unretracted derived
/// line, and nothing else may.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProofAuditSnapshot {
    /// Proof line ids of derived clauses without a deletion record, sorted
    /// ascending.
    pub live_derived: Vec<u64>,
    /// Number of axiom lines recorded.
    pub num_axioms: u64,
}
