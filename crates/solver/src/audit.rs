//! Solver-state auditor (the `debug-invariants` feature).
//!
//! [`Solver::audit`] cross-checks the redundant data structures of the
//! solver against each other: the watch lists against the clause arena, the
//! trail against values/levels/reasons, the arena record chain against its
//! own headers, and the CDG against the live-clause roots that
//! [`Solver::prune_cdg`] keeps. The checks are O(database) and allocate, so
//! they live behind a cargo feature and are invoked from the differential
//! test suites (and internally after compaction and CDG pruning) rather
//! than from production runs.
//!
//! The auditor is deliberately a *child module* of `solver`: it reads the
//! private fields directly, so it can never drift into testing a sanitized
//! accessor view instead of the real state.

use std::collections::{HashMap, HashSet};

use rbmc_cnf::Lit;

use crate::cdg::ClauseId;
use crate::lbool::LBool;

use super::Solver;

/// Shorthand: formats an audit failure.
macro_rules! fail {
    ($($arg:tt)*) => {
        return Err(format!($($arg)*))
    };
}

impl Solver {
    /// Checks every internal invariant of the solver state, returning a
    /// description of the first violation found.
    ///
    /// Intended for tests and the `debug-invariants` builds of the BMC
    /// engine; with the feature enabled the solver also calls it after each
    /// learned-database compaction and each CDG prune, turning every
    /// differential test into a structural one.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated invariant.
    pub fn audit(&self) -> Result<(), String> {
        let headers = self.audit_arena()?;
        self.audit_watches(&headers)?;
        self.audit_trail(&headers)?;
        self.audit_cdg()?;
        Ok(())
    }

    /// Walks the arena record chain: every header length must land the
    /// cursor exactly on the next header (ending at `end_offset`), every
    /// stored literal must name a known variable, and the patched
    /// `original_refs` table must point at live original records. Returns
    /// the set of valid header offsets for the cross-checks.
    fn audit_arena(&self) -> Result<HashSet<u32>, String> {
        let mut headers: HashSet<u32> = HashSet::new();
        let mut cursor = self.clauses.first();
        let mut last_end = 0u32;
        while let Some(cref) = cursor {
            let len = self.clauses.len(cref);
            for i in 0..len {
                let lit = self.clauses.lit(cref, i);
                if lit.var().index() >= self.num_vars() {
                    fail!(
                        "arena: clause at {} holds literal of unknown var {}",
                        cref.offset(),
                        lit.var().index()
                    );
                }
            }
            if self.clauses.is_deleted(cref) && !self.clauses.is_learned(cref) {
                fail!("arena: original clause at {} marked deleted", cref.offset());
            }
            headers.insert(cref.offset());
            last_end = cref.offset() + 3 + len as u32;
            cursor = self.clauses.next(cref);
        }
        if last_end != self.clauses.end_offset() {
            fail!(
                "arena: record chain ends at {last_end}, arena at {}",
                self.clauses.end_offset()
            );
        }
        if self.original_refs.len() != self.num_original {
            fail!(
                "arena: {} original refs vs num_original {}",
                self.original_refs.len(),
                self.num_original
            );
        }
        for (pos, &cref) in self.original_refs.iter().enumerate() {
            if !headers.contains(&cref.offset()) {
                fail!(
                    "arena: original {pos} points at non-header offset {}",
                    cref.offset()
                );
            }
            if self.clauses.is_learned(cref) {
                fail!("arena: original {pos} resolved to a learned record");
            }
        }
        for &cref in &self.pending_units {
            if !headers.contains(&cref.offset()) {
                fail!("arena: pending unit at non-header offset {}", cref.offset());
            }
        }
        if let Some(empty) = self.empty_clause {
            if !headers.contains(&empty.offset()) || self.clauses.len(empty) != 0 {
                fail!("arena: empty-clause ref is not a length-0 record");
            }
        }
        Ok(headers)
    }

    /// Watch-list consistency: every live clause of length ≥ 2 is watched
    /// exactly once under each of its slot-0/slot-1 literals — in the binary
    /// tier with the *other* literal inlined as `implied`, or in the long
    /// tier with a blocker drawn from the clause body — and nothing else in
    /// any list references it.
    fn audit_watches(&self, headers: &HashSet<u32>) -> Result<(), String> {
        if self.watches.len() != 2 * self.num_vars() {
            fail!(
                "watches: {} lists for {} vars",
                self.watches.len(),
                self.num_vars()
            );
        }
        // offset -> watching literal codes seen so far.
        let mut seen: HashMap<u32, Vec<usize>> = HashMap::new();
        for (code, lists) in self.watches.iter().enumerate() {
            let watcher = Lit::from_code(code);
            for w in &lists.bins {
                let cref = w.clause;
                if !headers.contains(&cref.offset()) {
                    fail!("watches: bin entry at non-header offset {}", cref.offset());
                }
                if self.clauses.is_deleted(cref) {
                    fail!(
                        "watches: bin entry references deleted clause at {}",
                        cref.offset()
                    );
                }
                if self.clauses.len(cref) != 2 {
                    fail!(
                        "watches: length-{} clause at {} in the binary tier",
                        self.clauses.len(cref),
                        cref.offset()
                    );
                }
                let (l0, l1) = (self.clauses.lit(cref, 0), self.clauses.lit(cref, 1));
                let other = if watcher == l0 {
                    l1
                } else if watcher == l1 {
                    l0
                } else {
                    fail!(
                        "watches: {watcher:?} watches binary clause at {} without being in it",
                        cref.offset()
                    );
                };
                if w.implied != other {
                    fail!(
                        "watches: binary clause at {} caches implied {:?}, body says {:?}",
                        cref.offset(),
                        w.implied,
                        other
                    );
                }
                seen.entry(cref.offset()).or_default().push(code);
            }
            for w in &lists.longs {
                let cref = w.clause;
                if !headers.contains(&cref.offset()) {
                    fail!("watches: long entry at non-header offset {}", cref.offset());
                }
                if self.clauses.is_deleted(cref) {
                    fail!(
                        "watches: long entry references deleted clause at {}",
                        cref.offset()
                    );
                }
                let len = self.clauses.len(cref);
                if len < 3 {
                    fail!(
                        "watches: length-{len} clause at {} in the long tier",
                        cref.offset()
                    );
                }
                let (l0, l1) = (self.clauses.lit(cref, 0), self.clauses.lit(cref, 1));
                if watcher != l0 && watcher != l1 {
                    fail!(
                        "watches: {watcher:?} watches clause at {} but slots 0/1 are {l0:?}/{l1:?}",
                        cref.offset()
                    );
                }
                let blocker_in_body = (0..len).any(|i| self.clauses.lit(cref, i) == w.blocker);
                if !blocker_in_body {
                    fail!(
                        "watches: blocker {:?} of clause at {} is not in the clause",
                        w.blocker,
                        cref.offset()
                    );
                }
                seen.entry(cref.offset()).or_default().push(code);
            }
        }
        // Forward direction: every live clause of length >= 2 is watched on
        // exactly its two leading literals.
        let mut cursor = self.clauses.first();
        while let Some(cref) = cursor {
            cursor = self.clauses.next(cref);
            let len = self.clauses.len(cref);
            let expected: &[usize] = if len >= 2 && !self.clauses.is_deleted(cref) {
                &[
                    self.clauses.lit(cref, 0).code(),
                    self.clauses.lit(cref, 1).code(),
                ]
            } else {
                &[]
            };
            let mut got = seen.remove(&cref.offset()).unwrap_or_default();
            got.sort_unstable();
            let mut want = expected.to_vec();
            want.sort_unstable();
            if got != want {
                fail!(
                    "watches: clause at {} (len {len}) watched under codes {got:?}, want {want:?}",
                    cref.offset()
                );
            }
        }
        Ok(())
    }

    /// Trail coherence: assignments, levels, reasons, and the trail agree.
    /// Reasons of variables assigned **above** level 0 must be live clauses
    /// asserting exactly that variable; level-0 reasons are exempt from the
    /// liveness check — a learned clause that implied a root fact is itself
    /// root-satisfied and may legitimately be compacted away, and the search
    /// never dereferences root-level reasons (conflict analysis cites the
    /// CDG unit-fact node instead).
    fn audit_trail(&self, headers: &HashSet<u32>) -> Result<(), String> {
        let n = self.num_vars();
        if self.values.len() != n
            || self.levels.len() != n
            || self.reasons.len() != n
            || self.unit_node.len() != n
        {
            fail!("trail: per-variable table lengths disagree with num_vars {n}");
        }
        if self.qhead > self.trail.len() {
            fail!(
                "trail: qhead {} beyond trail {}",
                self.qhead,
                self.trail.len()
            );
        }
        let mut prev = 0usize;
        for (lvl, &lim) in self.trail_lim.iter().enumerate() {
            if lim < prev || lim > self.trail.len() {
                fail!("trail: trail_lim[{lvl}] = {lim} is not monotone within the trail");
            }
            prev = lim;
        }
        let mut pos: Vec<Option<usize>> = vec![None; n];
        for (i, &lit) in self.trail.iter().enumerate() {
            let v = lit.var().index();
            if pos[v].is_some() {
                fail!("trail: variable {v} assigned twice");
            }
            pos[v] = Some(i);
            if self.lit_value(lit) != LBool::True {
                fail!("trail: literal {lit:?} on the trail is not true");
            }
            let level = self.trail_lim.iter().filter(|&&lim| lim <= i).count() as u32;
            if self.levels[v] != level {
                fail!(
                    "trail: var {v} at trail position {i} has level {}, segments say {level}",
                    self.levels[v]
                );
            }
        }
        let assigned = self.values.iter().filter(|v| !v.is_undef()).count();
        if assigned != self.trail.len() {
            fail!(
                "trail: {assigned} assigned variables but {} trail entries",
                self.trail.len()
            );
        }
        for (v, p) in pos.iter().enumerate() {
            if p.is_none() && self.reasons[v].is_some() {
                fail!("trail: unassigned var {v} keeps a stale reason");
            }
            if let Some(node) = self.unit_node[v] {
                if (node as usize) >= self.cdg.num_total_nodes() {
                    fail!("trail: unit node {node} of var {v} is out of CDG bounds");
                }
                if p.is_none() || self.levels[v] != 0 {
                    fail!("trail: var {v} has a unit-fact node but is not a root assignment");
                }
            }
        }
        for (i, &lit) in self.trail.iter().enumerate() {
            let v = lit.var().index();
            if self.levels[v] == 0 {
                continue; // reasons of root facts may be compacted away
            }
            let Some(reason) = self.reasons[v] else {
                continue; // decision or assumption pseudo-decision
            };
            if !headers.contains(&reason.offset()) {
                fail!(
                    "trail: reason of var {v} points at non-header offset {}",
                    reason.offset()
                );
            }
            if self.clauses.is_deleted(reason) {
                fail!("trail: reason of var {v} is a deleted clause");
            }
            let len = self.clauses.len(reason);
            let mut found = false;
            for j in 0..len {
                let q = self.clauses.lit(reason, j);
                if q == lit {
                    found = true;
                    continue;
                }
                if q.var().index() == v {
                    fail!("trail: reason of var {v} contains its negation");
                }
                if self.lit_value(q) != LBool::False {
                    fail!("trail: reason of var {v} has non-false side literal {q:?}");
                }
                match pos[q.var().index()] {
                    Some(p) if p < i => {}
                    _ => fail!("trail: reason of var {v} cites {q:?}, not assigned before it"),
                }
            }
            if !found {
                fail!("trail: reason of var {v} does not contain its literal");
            }
        }
        if self.seen.iter().any(|&s| s) {
            fail!("trail: conflict-analysis scratch `seen` is dirty");
        }
        Ok(())
    }

    /// CDG-node reachability: recomputes the root set exactly as
    /// [`Solver::prune_cdg`] does — the CDG IDs of live arena records plus
    /// the per-variable unit-fact nodes — and checks every root and every
    /// antecedent edge reachable from them stays inside the graph. After a
    /// prune this is precisely the kept node set, so a dangling edge means
    /// the prune and its external ID rewrites disagreed.
    fn audit_cdg(&self) -> Result<(), String> {
        if !self.opts.record_cdg {
            return Ok(());
        }
        let total = self.cdg.num_total_nodes();
        let mut roots: Vec<ClauseId> = Vec::new();
        let mut cursor = self.clauses.first();
        while let Some(cref) = cursor {
            cursor = self.clauses.next(cref);
            if !self.clauses.is_deleted(cref) {
                let id = self.clauses.cdg_id(cref);
                if (id as usize) >= total {
                    fail!(
                        "cdg: live clause at {} carries node id {id}, graph has {total}",
                        cref.offset()
                    );
                }
                roots.push(id);
            }
        }
        roots.extend(self.unit_node.iter().flatten().copied());
        let reachable = self.cdg.audit_reachable(&roots)?;
        debug_assert!(reachable <= total);
        Ok(())
    }

    /// Cross-checks an attached proof log against the clause database: the
    /// log's unretracted derived lines must be exactly the proof ids of the
    /// live learned clauses plus the root-level unit facts (nothing missing,
    /// nothing extra), and the axiom count must match the originals added.
    ///
    /// The snapshot comes from [`crate::ProofLog::audit_snapshot`]; logs
    /// that do not track one simply opt out of this audit. The engines call
    /// this at depth boundaries under `debug-invariants`, turning every
    /// differential run into a log/database coherence check.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence between the log and
    /// the database.
    pub fn audit_proof(&self, snapshot: &crate::ProofAuditSnapshot) -> Result<(), String> {
        if self.proof.is_none() {
            fail!("proof: audit_proof called with no log attached");
        }
        if snapshot.num_axioms != self.original_refs.len() as u64 {
            fail!(
                "proof: log holds {} axiom lines, database {} original clauses",
                snapshot.num_axioms,
                self.original_refs.len()
            );
        }
        let pid_of =
            |id: ClauseId| -> u64 { self.proof_of_cdg.get(id as usize).copied().unwrap_or(0) };
        let mut expected: Vec<u64> = Vec::new();
        let mut cursor = self.clauses.first();
        while let Some(cref) = cursor {
            if self.clauses.is_learned(cref) && !self.clauses.is_deleted(cref) {
                let pid = pid_of(self.clauses.cdg_id(cref));
                if pid == 0 {
                    fail!(
                        "proof: live learned clause at {} has no proof line",
                        cref.offset()
                    );
                }
                expected.push(pid);
            }
            cursor = self.clauses.next(cref);
        }
        for &node in self.unit_node.iter().flatten() {
            let pid = pid_of(node);
            if pid == 0 {
                fail!("proof: root-level unit fact (CDG node {node}) has no proof line");
            }
            expected.push(pid);
        }
        expected.sort_unstable();
        if expected != snapshot.live_derived {
            let rank = expected
                .iter()
                .zip(&snapshot.live_derived)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| expected.len().min(snapshot.live_derived.len()));
            let in_log = snapshot.live_derived.get(rank);
            let in_db = expected.get(rank);
            fail!(
                "proof: live lines diverge at rank {rank}: log has {in_log:?}, database \
                 {in_db:?} ({} log lines vs {} database clauses)",
                snapshot.live_derived.len(),
                expected.len()
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use rbmc_cnf::{CnfFormula, Lit, Var};

    use crate::{ProofAuditSnapshot, ProofLog};

    use super::super::{SolveResult, Solver, SolverOptions};

    fn lit(v: usize, neg: bool) -> Lit {
        Lit::new(Var::new(v), neg)
    }

    /// (x ∨ y) ∧ (¬x ∨ y) ∧ (x ∨ ¬y ∨ z): satisfiable, with binary and
    /// ternary clauses so both watch tiers are populated.
    fn sat_formula() -> CnfFormula {
        let mut f = CnfFormula::with_vars(3);
        f.add_clause([lit(0, false), lit(1, false)]);
        f.add_clause([lit(0, true), lit(1, false)]);
        f.add_clause([lit(0, false), lit(1, true), lit(2, false)]);
        f
    }

    #[test]
    fn clean_solver_passes_audit() {
        let mut s = Solver::from_formula(&sat_formula());
        s.audit().expect("fresh solver audits clean");
        assert_eq!(s.solve(), SolveResult::Sat);
        s.audit().expect("solved solver audits clean");
    }

    #[test]
    fn unsat_solver_passes_audit() {
        let mut f = CnfFormula::with_vars(2);
        f.add_clause([lit(0, false), lit(1, false)]);
        f.add_clause([lit(0, true), lit(1, false)]);
        f.add_clause([lit(0, false), lit(1, true)]);
        f.add_clause([lit(0, true), lit(1, true)]);
        let mut s = Solver::from_formula(&f);
        assert_eq!(s.solve(), SolveResult::Unsat);
        s.audit().expect("UNSAT solver audits clean");
    }

    #[test]
    fn audit_flags_corrupted_assignment() {
        let mut s = Solver::from_formula(&sat_formula());
        assert_eq!(s.solve(), SolveResult::Sat);
        let v = s.trail[0].var().index();
        s.values[v] = s.values[v].xor(true);
        let err = s.audit().expect_err("flipped assignment must fail");
        assert!(err.contains("trail"), "unexpected report: {err}");
    }

    #[test]
    fn audit_flags_missing_watch_entry() {
        let mut s = Solver::from_formula(&sat_formula());
        s.audit().expect("clean before tampering");
        for wl in &mut s.watches {
            if wl.bins.pop().is_some() {
                break;
            }
        }
        let err = s.audit().expect_err("dropped watch must fail");
        assert!(err.contains("watches"), "unexpected report: {err}");
    }

    #[test]
    fn audit_flags_bad_implied_literal() {
        let mut s = Solver::from_formula(&sat_formula());
        for wl in &mut s.watches {
            if let Some(w) = wl.bins.first_mut() {
                w.implied = !w.implied;
                break;
            }
        }
        let err = s.audit().expect_err("wrong implied literal must fail");
        assert!(err.contains("implied"), "unexpected report: {err}");
    }

    /// Minimal [`ProofLog`] that tracks exactly the bookkeeping
    /// [`ProofAuditSnapshot`] wants, so the coherence audit can be pinned
    /// without depending on the real recorder crate.
    #[derive(Debug, Default)]
    struct TestLog {
        axioms: u64,
        live: Vec<u64>,
    }

    impl ProofLog for TestLog {
        fn axiom(&mut self, _id: u64, _lits: &[Lit]) {
            self.axioms += 1;
        }

        fn derived(&mut self, id: u64, _lits: &[Lit], _hints: &[u64]) {
            self.live.push(id);
        }

        fn delete(&mut self, id: u64) {
            self.live.retain(|&x| x != id);
        }

        fn finalize(&mut self, _lits: &[Lit], _hints: &[u64]) {}

        fn audit_snapshot(&self) -> Option<ProofAuditSnapshot> {
            let mut live_derived = self.live.clone();
            live_derived.sort_unstable();
            Some(ProofAuditSnapshot {
                live_derived,
                num_axioms: self.axioms,
            })
        }
    }

    /// Solves an UNSAT formula with a [`TestLog`] attached and returns the
    /// solver together with its end-state snapshot.
    fn logged_unsat_solver() -> (Solver, ProofAuditSnapshot) {
        let mut s = Solver::with_options(SolverOptions::default());
        s.set_proof_log(Box::new(TestLog::default()));
        s.reserve_vars(2);
        s.add_clause(&[lit(0, false), lit(1, false)]);
        s.add_clause(&[lit(0, true), lit(1, false)]);
        s.add_clause(&[lit(0, false), lit(1, true)]);
        s.add_clause(&[lit(0, true), lit(1, true)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        let snapshot = s
            .proof_log()
            .expect("log attached")
            .audit_snapshot()
            .expect("TestLog tracks a snapshot");
        (s, snapshot)
    }

    #[test]
    fn proof_audit_accepts_coherent_log() {
        let (s, snapshot) = logged_unsat_solver();
        s.audit_proof(&snapshot).expect("coherent log audits clean");
        assert!(snapshot.num_axioms == 4 && !snapshot.live_derived.is_empty());
    }

    #[test]
    fn proof_audit_flags_missing_and_extra_lines() {
        let (s, snapshot) = logged_unsat_solver();
        let mut dropped = snapshot.clone();
        dropped.live_derived.pop();
        let err = s.audit_proof(&dropped).expect_err("retracted live line");
        assert!(err.contains("diverge"), "unexpected report: {err}");
        let mut extra = snapshot;
        extra.live_derived.push(u64::MAX);
        let err = s.audit_proof(&extra).expect_err("phantom live line");
        assert!(err.contains("diverge"), "unexpected report: {err}");
    }

    #[test]
    fn proof_audit_flags_axiom_count_mismatch() {
        let (s, snapshot) = logged_unsat_solver();
        let mut tampered = snapshot;
        tampered.num_axioms += 1;
        let err = s.audit_proof(&tampered).expect_err("axiom count drift");
        assert!(err.contains("axiom"), "unexpected report: {err}");
    }

    #[test]
    fn audit_survives_heavy_reduction_run() {
        // The compaction-time hook already audits mid-search; this pins an
        // end-state audit after a run that actually compacts and prunes.
        let opts = SolverOptions {
            reduce_base: 2,
            reduce_inc: 1,
            ..SolverOptions::default()
        };
        let mut f = CnfFormula::with_vars(8);
        let lits = |bits: u32, width: usize| -> Vec<Lit> {
            (0..width)
                .map(|i| lit((7 * i + 3) % 8, bits & (1 << i) != 0))
                .collect()
        };
        for c in 0..34u32 {
            f.add_clause(lits(c.wrapping_mul(0x9E37), 3));
        }
        let mut s = Solver::from_formula_with(&f, opts);
        let _ = s.solve();
        s.prune_cdg();
        s.audit().expect("post-run audit");
    }
}
