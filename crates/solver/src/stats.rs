//! Search statistics.

/// Counters collected during a solve.
///
/// `decisions` and `propagations` correspond to the paper's
/// "Number of Decisions" and "Number of Implications" (Fig. 7); the size of
/// the search tree is proportional to `decisions`.
///
/// # Examples
///
/// ```
/// use rbmc_cnf::parse_dimacs;
/// use rbmc_solver::Solver;
///
/// let f = parse_dimacs("p cnf 2 2\n1 2 0\n-1 0\n")?;
/// let mut solver = Solver::from_formula(&f);
/// solver.solve();
/// assert!(solver.stats().propagations >= 1);
/// # Ok::<(), rbmc_cnf::ParseDimacsError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made (paper: number of decisions; Fig. 7 left).
    pub decisions: u64,
    /// Number of implied assignments made by BCP (paper: implications;
    /// Fig. 7 right).
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learned (conflict) clauses added.
    pub learned: u64,
    /// Number of learned clauses whose bodies were deleted by clause-database
    /// reduction. Their CDG pseudo-IDs survive (§3.1).
    pub deleted: u64,
    /// Number of input clauses skipped as tautologies (both phases of a
    /// variable); they are never watched and never enter cores.
    pub tautologies: u64,
    /// Number of arena compactions performed by clause-database reduction
    /// (each one relocates the surviving learned clauses and rebuilds the
    /// watch lists).
    pub compactions: u64,
    /// Number of learned clauses deleted because a level-0 fact (typically a
    /// retired activation literal of the incremental session) satisfies them
    /// forever.
    pub root_satisfied_deleted: u64,
    /// Number of literals in all learned clauses (for overhead accounting).
    pub learned_literals: u64,
    /// Number of solve episodes
    /// ([`Solver::solve_under`](crate::Solver::solve_under) /
    /// [`Solver::solve_limited`](crate::Solver::solve_limited) calls) run on
    /// this solver.
    pub solve_calls: u64,
    /// Number of solve episodes that ended UNSAT because an assumption
    /// failed (the incremental session's per-depth UNSAT verdicts).
    pub assumption_conflicts: u64,
    /// Total learned clauses alive at the start of each solve episode after
    /// the first — the work an incremental session carries across calls that
    /// a fresh-per-depth setup would discard.
    pub learned_retained: u64,
    /// Number of VSIDS halving rounds applied to `cha_score`.
    pub score_halvings: u64,
    /// True if the dynamic configuration gave up on the refined ordering and
    /// switched back to pure VSIDS (§3.3).
    pub switched_to_vsids: bool,
    /// Number of nodes recorded in the simplified conflict dependency graph.
    pub cdg_nodes: u64,
    /// Number of antecedent edges recorded in the simplified CDG.
    pub cdg_edges: u64,
    /// Highest number of learned CDG nodes alive at once. Without pruning
    /// this equals the final `cdg_nodes`; with depth-boundary pruning
    /// ([`Solver::prune_cdg`](crate::Solver::prune_cdg)) it is the session's
    /// actual memory high-water mark.
    pub cdg_peak_nodes: u64,
    /// Number of CDG nodes discarded by [`Solver::prune_cdg`](crate::Solver::prune_cdg)
    /// (unreachable from every live clause and root-level fact).
    pub cdg_pruned_nodes: u64,
    /// Number of watch-list entries rewritten by arena compaction. Only the
    /// entries of clauses that actually relocated are touched; every other
    /// watch list survives a compaction byte-for-byte.
    pub watch_entries_repaired: u64,
    /// High-water mark of the clause arena, in bytes (original + learned
    /// clause storage; updated at allocation and compaction).
    pub arena_peak_bytes: u64,
    /// High-water mark of the unroller's cached clause prefix (filled in by
    /// the BMC engine; stays at the full prefix size unless bounded prefix
    /// mode retires frames).
    pub prefix_peak_clauses: u64,
    /// High-water mark of stored `varRank` entries (filled in by the BMC
    /// engine; sparse storage keeps this at the cited-variable count rather
    /// than the full variable range).
    pub rank_peak_entries: u64,
    /// High-water mark of the `varRank` table's approximate heap bytes
    /// (filled in by the BMC engine).
    pub rank_peak_bytes: u64,
}

impl SolverStats {
    /// Creates zeroed statistics.
    pub fn new() -> SolverStats {
        SolverStats::default()
    }

    /// Adds the counters of `other` into `self` (used to accumulate per-depth
    /// statistics over a whole BMC run). `switched_to_vsids` is OR-ed.
    pub fn accumulate(&mut self, other: &SolverStats) {
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.conflicts += other.conflicts;
        self.restarts += other.restarts;
        self.learned += other.learned;
        self.deleted += other.deleted;
        self.tautologies += other.tautologies;
        self.compactions += other.compactions;
        self.root_satisfied_deleted += other.root_satisfied_deleted;
        self.learned_literals += other.learned_literals;
        self.solve_calls += other.solve_calls;
        self.assumption_conflicts += other.assumption_conflicts;
        self.learned_retained += other.learned_retained;
        self.score_halvings += other.score_halvings;
        self.switched_to_vsids |= other.switched_to_vsids;
        self.cdg_nodes += other.cdg_nodes;
        self.cdg_edges += other.cdg_edges;
        // A peak is a high-water mark, not a flow: over independent solvers
        // the aggregate peak is the largest individual one.
        self.cdg_peak_nodes = self.cdg_peak_nodes.max(other.cdg_peak_nodes);
        self.cdg_pruned_nodes += other.cdg_pruned_nodes;
        self.watch_entries_repaired += other.watch_entries_repaired;
        self.arena_peak_bytes = self.arena_peak_bytes.max(other.arena_peak_bytes);
        self.prefix_peak_clauses = self.prefix_peak_clauses.max(other.prefix_peak_clauses);
        self.rank_peak_entries = self.rank_peak_entries.max(other.rank_peak_entries);
        self.rank_peak_bytes = self.rank_peak_bytes.max(other.rank_peak_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_counters() {
        let mut a = SolverStats {
            decisions: 3,
            propagations: 10,
            conflicts: 1,
            ..SolverStats::default()
        };
        let b = SolverStats {
            decisions: 2,
            propagations: 5,
            switched_to_vsids: true,
            ..SolverStats::default()
        };
        a.accumulate(&b);
        assert_eq!(a.decisions, 5);
        assert_eq!(a.propagations, 15);
        assert_eq!(a.conflicts, 1);
        assert!(a.switched_to_vsids);
    }

    #[test]
    fn accumulate_maxes_peaks() {
        let mut a = SolverStats {
            cdg_peak_nodes: 7,
            arena_peak_bytes: 100,
            prefix_peak_clauses: 4,
            rank_peak_entries: 9,
            rank_peak_bytes: 72,
            ..SolverStats::default()
        };
        let b = SolverStats {
            cdg_peak_nodes: 3,
            arena_peak_bytes: 250,
            prefix_peak_clauses: 9,
            rank_peak_entries: 2,
            rank_peak_bytes: 16,
            ..SolverStats::default()
        };
        a.accumulate(&b);
        assert_eq!(a.cdg_peak_nodes, 7);
        assert_eq!(a.arena_peak_bytes, 250);
        assert_eq!(a.prefix_peak_clauses, 9);
        assert_eq!(a.rank_peak_entries, 9);
        assert_eq!(a.rank_peak_bytes, 72);
    }
}
