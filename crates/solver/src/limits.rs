//! Resource limits for a solve call.

use std::time::Instant;

/// Resource limits applied to [`Solver::solve_limited`](crate::Solver::solve_limited).
///
/// Any limit left as `None` is unbounded. The paper's experiments use a
/// wall-clock timeout (2 hours per instance); deterministic replication is
/// easier with `max_decisions` or `max_conflicts`, so all are offered.
///
/// # Examples
///
/// ```
/// use std::time::{Duration, Instant};
/// use rbmc_solver::Limits;
///
/// let limits = Limits::new()
///     .with_max_conflicts(10_000)
///     .with_deadline(Instant::now() + Duration::from_secs(5));
/// assert_eq!(limits.max_conflicts, Some(10_000));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Limits {
    /// Stop after this many conflicts.
    pub max_conflicts: Option<u64>,
    /// Stop after this many decisions.
    pub max_decisions: Option<u64>,
    /// Stop after this many propagations.
    pub max_propagations: Option<u64>,
    /// Stop when the wall clock passes this instant.
    pub deadline: Option<Instant>,
}

impl Limits {
    /// Creates unbounded limits.
    pub fn new() -> Limits {
        Limits::default()
    }

    /// Sets a conflict budget.
    pub fn with_max_conflicts(mut self, n: u64) -> Limits {
        self.max_conflicts = Some(n);
        self
    }

    /// Sets a decision budget.
    pub fn with_max_decisions(mut self, n: u64) -> Limits {
        self.max_decisions = Some(n);
        self
    }

    /// Sets a propagation budget.
    pub fn with_max_propagations(mut self, n: u64) -> Limits {
        self.max_propagations = Some(n);
        self
    }

    /// Sets a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Limits {
        self.deadline = Some(deadline);
        self
    }

    /// Returns true if no limit is set at all.
    pub fn is_unbounded(&self) -> bool {
        self.max_conflicts.is_none()
            && self.max_decisions.is_none()
            && self.max_propagations.is_none()
            && self.deadline.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let l = Limits::new().with_max_decisions(5).with_max_propagations(7);
        assert_eq!(l.max_decisions, Some(5));
        assert_eq!(l.max_propagations, Some(7));
        assert_eq!(l.max_conflicts, None);
        assert!(!l.is_unbounded());
    }

    #[test]
    fn default_is_unbounded() {
        assert!(Limits::new().is_unbounded());
    }
}
