//! Resource limits and cooperative cancellation for a solve call.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared cooperative cancellation token.
///
/// Cloning the flag shares the underlying state: one side (a portfolio
/// driver, a signal handler, a test harness) calls [`CancelFlag::cancel`],
/// and every solve episode whose [`Limits`] carry a clone of the flag
/// returns [`SolveResult::Unknown`](crate::SolveResult::Unknown) at its next
/// budget checkpoint — the same resumable truncation path a conflict budget
/// takes, so a cancelled solver (and the engine above it) is left in a
/// consistent, reusable state.
///
/// # Examples
///
/// ```
/// use rbmc_solver::CancelFlag;
///
/// let flag = CancelFlag::new();
/// let shared = flag.clone();
/// assert!(!shared.is_cancelled());
/// flag.cancel();
/// assert!(shared.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// Creates a fresh, uncancelled flag.
    pub fn new() -> CancelFlag {
        CancelFlag::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Resource limits applied to [`Solver::solve_limited`](crate::Solver::solve_limited).
///
/// Any limit left as `None` is unbounded. The paper's experiments use a
/// wall-clock timeout (2 hours per instance); deterministic replication is
/// easier with `max_decisions` or `max_conflicts`, so all are offered, plus
/// a cooperative [`CancelFlag`] for portfolio racing (first verdict wins,
/// losers cancelled).
///
/// # Examples
///
/// ```
/// use std::time::{Duration, Instant};
/// use rbmc_solver::Limits;
///
/// let limits = Limits::new()
///     .with_max_conflicts(10_000)
///     .with_deadline(Instant::now() + Duration::from_secs(5));
/// assert_eq!(limits.max_conflicts, Some(10_000));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Limits {
    /// Stop after this many conflicts.
    pub max_conflicts: Option<u64>,
    /// Stop after this many decisions.
    pub max_decisions: Option<u64>,
    /// Stop after this many propagations.
    pub max_propagations: Option<u64>,
    /// Stop when the wall clock passes this instant.
    pub deadline: Option<Instant>,
    /// Stop as soon as this shared flag is raised (checked at the same
    /// checkpoints as the counter budgets).
    pub cancel: Option<CancelFlag>,
}

impl Limits {
    /// Creates unbounded limits.
    pub fn new() -> Limits {
        Limits::default()
    }

    /// Sets a conflict budget.
    pub fn with_max_conflicts(mut self, n: u64) -> Limits {
        self.max_conflicts = Some(n);
        self
    }

    /// Sets a decision budget.
    pub fn with_max_decisions(mut self, n: u64) -> Limits {
        self.max_decisions = Some(n);
        self
    }

    /// Sets a propagation budget.
    pub fn with_max_propagations(mut self, n: u64) -> Limits {
        self.max_propagations = Some(n);
        self
    }

    /// Sets a wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Limits {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a cooperative cancellation flag.
    pub fn with_cancel(mut self, cancel: CancelFlag) -> Limits {
        self.cancel = Some(cancel);
        self
    }

    /// Returns true if no limit is set at all.
    pub fn is_unbounded(&self) -> bool {
        self.max_conflicts.is_none()
            && self.max_decisions.is_none()
            && self.max_propagations.is_none()
            && self.deadline.is_none()
            && self.cancel.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let l = Limits::new().with_max_decisions(5).with_max_propagations(7);
        assert_eq!(l.max_decisions, Some(5));
        assert_eq!(l.max_propagations, Some(7));
        assert_eq!(l.max_conflicts, None);
        assert!(!l.is_unbounded());
    }

    #[test]
    fn default_is_unbounded() {
        assert!(Limits::new().is_unbounded());
    }

    #[test]
    fn cancel_flag_is_shared_across_clones() {
        let flag = CancelFlag::new();
        let limits = Limits::new().with_cancel(flag.clone());
        assert!(!limits.is_unbounded());
        assert!(!limits.cancel.as_ref().unwrap().is_cancelled());
        flag.cancel();
        assert!(limits.cancel.as_ref().unwrap().is_cancelled());
    }
}
