//! The simplified Conflict Dependency Graph (paper §3.1).
//!
//! To extract an unsatisfiable core, every conflict clause must remember
//! which clauses its resolution used. Chaff-style solvers periodically delete
//! learned clauses, which would break that dependency chain — so, exactly as
//! the paper proposes, we keep a *separate, simplified* CDG: each conflict
//! clause is represented only by a pseudo-ID (an integer) and the list of
//! antecedent pseudo-IDs. The clause database can then delete clause bodies
//! freely; the CDG retains everything needed to identify the unsatisfiable
//! core by a backward traversal from the final conflict.
//!
//! Node IDs are allocated from a single sequence shared by original clauses
//! (leaves, carrying their input position) and learned clauses (inner nodes,
//! carrying antecedent lists). The shared sequence is what lets the
//! incremental session API interleave [`Cdg::record_original`] (clauses added
//! between solve calls) with [`Cdg::record_learned`] without the two ID
//! spaces colliding — the fixed `num_original` split of the per-instance
//! design cannot express late originals.

/// Pseudo-ID of a CDG node (original clauses and conflict clauses share one
/// allocation sequence).
pub(crate) type ClauseId = u32;

/// Leaf marker in the `leaf` table: the node is a learned (inner) node.
const LEARNED: u32 = u32::MAX;

/// The simplified conflict dependency graph.
///
/// Nodes are clause pseudo-IDs; the antecedent lists are the edges. The
/// "empty clause" node of the paper's Fig. 2 is stored separately as
/// `final_antecedents`.
///
/// Antecedent lists are stored flat (one data array plus per-node end
/// offsets) rather than as one `Vec` per node: recording a node is then an
/// allocation-free append, which matters because the solver records a node
/// for every level-0 implication and every learned clause.
#[derive(Debug, Default)]
pub(crate) struct Cdg {
    /// Concatenated antecedent lists, in node order (leaves contribute an
    /// empty list).
    ant_data: Vec<ClauseId>,
    /// `ant_ends[id]` is the end offset in `ant_data` of node `id`'s list
    /// (its start is `ant_ends[id - 1]`, or 0).
    ant_ends: Vec<u32>,
    /// Input position of the original clause a leaf node stands for, or
    /// [`LEARNED`] for inner nodes.
    leaf: Vec<u32>,
    /// Number of learned (inner) nodes recorded so far.
    num_learned: u64,
    /// Antecedents of the final (empty-clause) conflict, once UNSAT is
    /// established outright (not merely under assumptions).
    final_antecedents: Option<Vec<ClauseId>>,
}

impl Cdg {
    /// Creates an empty CDG.
    pub(crate) fn new() -> Cdg {
        Cdg::default()
    }

    /// Records an original clause (a leaf) and returns its pseudo-ID.
    /// `input_pos` is the clause's position in `add_clause` order — what
    /// core extraction reports back.
    pub(crate) fn record_original(&mut self, input_pos: u32) -> ClauseId {
        let id = self.ant_ends.len() as ClauseId;
        self.ant_ends.push(self.ant_data.len() as u32);
        self.leaf.push(input_pos);
        id
    }

    /// Records a learned clause and returns its pseudo-ID.
    pub(crate) fn record_learned(&mut self, antecedents: &[ClauseId]) -> ClauseId {
        let id = self.ant_ends.len() as ClauseId;
        self.ant_data.extend_from_slice(antecedents);
        self.ant_ends.push(self.ant_data.len() as u32);
        self.leaf.push(LEARNED);
        self.num_learned += 1;
        id
    }

    /// The antecedent list of the node with `id`.
    fn antecedents_of(&self, id: usize) -> &[ClauseId] {
        let start = if id == 0 {
            0
        } else {
            self.ant_ends[id - 1] as usize
        };
        &self.ant_data[start..self.ant_ends[id] as usize]
    }

    /// Records the antecedents of the final conflict (the empty-clause node).
    pub(crate) fn record_final(&mut self, antecedents: Vec<ClauseId>) {
        self.final_antecedents = Some(antecedents);
    }

    /// Returns true once the final conflict has been recorded.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn has_final(&self) -> bool {
        self.final_antecedents.is_some()
    }

    /// Number of learned-clause (inner) nodes.
    pub(crate) fn num_nodes(&self) -> u64 {
        self.num_learned
    }

    /// Number of antecedent edges.
    pub(crate) fn num_edges(&self) -> u64 {
        self.ant_data.len() as u64
            + self
                .final_antecedents
                .as_ref()
                .map_or(0, |a| a.len() as u64)
    }

    /// Traverses the CDG backward from `roots` and returns the sorted input
    /// positions of the original clauses that are reachable — the
    /// unsatisfiable core of the conflict those roots derive.
    ///
    /// This is the per-call core of the incremental session API: an UNSAT
    /// answer under assumptions has no final empty clause, so the engine
    /// extracts the core from the antecedents of the failing-assumption
    /// analysis instead of a recorded final conflict.
    pub(crate) fn core_from(&self, roots: &[ClauseId]) -> Vec<usize> {
        let mut core = Vec::new();
        let mut seen = vec![false; self.ant_ends.len()];
        let mut stack: Vec<ClauseId> = roots.to_vec();
        while let Some(id) = stack.pop() {
            let idx = id as usize;
            if seen[idx] {
                continue;
            }
            seen[idx] = true;
            if self.leaf[idx] == LEARNED {
                stack.extend_from_slice(self.antecedents_of(idx));
            } else {
                core.push(self.leaf[idx] as usize);
            }
        }
        core.sort_unstable();
        core.dedup();
        core
    }

    /// Extracts the core of the recorded final conflict, or `None` if no
    /// final conflict was recorded (the instance was not proved outright
    /// unsatisfiable, or CDG recording was disabled).
    pub(crate) fn extract_core(&self) -> Option<Vec<usize>> {
        let final_ants = self.final_antecedents.as_ref()?;
        Some(self.core_from(final_ants))
    }

    /// Discards every node unreachable from `roots` (and from the recorded
    /// final conflict, if any), compacting the remaining nodes down and
    /// returning the ID remap: `remap[old_id]` is the surviving node's new
    /// ID, or [`ClauseId::MAX`] for a discarded node.
    ///
    /// This is the session-memory bound of a long BMC run: every future core
    /// extraction starts from the CDG IDs of *live* clauses (arena records
    /// plus level-0 unit facts), so once a node is unreachable from all of
    /// them it can never appear in another proof and its antecedent storage
    /// is pure garbage. The caller owns the live-root inventory — see
    /// [`Solver::prune_cdg`](crate::Solver::prune_cdg), which also rewrites
    /// the IDs stored outside the graph.
    ///
    /// Node order (and hence the relative order of surviving IDs) is
    /// preserved, so interleaved original/learned recording keeps working
    /// after a prune.
    pub(crate) fn prune_reachable(&mut self, roots: &[ClauseId]) -> Vec<ClauseId> {
        let num_nodes = self.ant_ends.len();
        let mut keep = vec![false; num_nodes];
        let mut stack: Vec<ClauseId> = roots.to_vec();
        if let Some(final_ants) = &self.final_antecedents {
            stack.extend_from_slice(final_ants);
        }
        while let Some(id) = stack.pop() {
            let idx = id as usize;
            if keep[idx] {
                continue;
            }
            keep[idx] = true;
            if self.leaf[idx] == LEARNED {
                stack.extend_from_slice(self.antecedents_of(idx));
            }
        }

        // Compact in place: surviving nodes keep their relative order.
        let mut remap = vec![ClauseId::MAX; num_nodes];
        let mut new_data: Vec<ClauseId> = Vec::new();
        let mut new_ends: Vec<u32> = Vec::new();
        let mut new_leaf: Vec<u32> = Vec::new();
        let mut num_learned = 0u64;
        for old in 0..num_nodes {
            if !keep[old] {
                continue;
            }
            remap[old] = new_ends.len() as ClauseId;
            for &ant in self.antecedents_of(old) {
                debug_assert_ne!(
                    remap[ant as usize],
                    ClauseId::MAX,
                    "kept node cites kept node"
                );
                new_data.push(remap[ant as usize]);
            }
            new_ends.push(new_data.len() as u32);
            new_leaf.push(self.leaf[old]);
            if self.leaf[old] == LEARNED {
                num_learned += 1;
            }
        }
        self.ant_data = new_data;
        self.ant_ends = new_ends;
        self.leaf = new_leaf;
        self.num_learned = num_learned;
        if let Some(final_ants) = self.final_antecedents.as_mut() {
            for ant in final_ants.iter_mut() {
                *ant = remap[*ant as usize];
            }
        }
        remap
    }

    /// Total number of nodes (leaves and inner) currently stored.
    pub(crate) fn num_total_nodes(&self) -> usize {
        self.ant_ends.len()
    }

    /// Audit helper: traverses backward from `roots` (plus the recorded
    /// final conflict, if any), checking that every visited ID and every
    /// antecedent edge stays in bounds and that the flat antecedent storage
    /// is internally consistent. Returns the number of reachable nodes.
    #[cfg(feature = "debug-invariants")]
    pub(crate) fn audit_reachable(&self, roots: &[ClauseId]) -> Result<usize, String> {
        let total = self.ant_ends.len();
        if self.leaf.len() != total {
            return Err(format!(
                "cdg: {} leaf markers for {} nodes",
                self.leaf.len(),
                total
            ));
        }
        let mut prev = 0u32;
        for (id, &end) in self.ant_ends.iter().enumerate() {
            if end < prev || end as usize > self.ant_data.len() {
                return Err(format!("cdg: antecedent end of node {id} is not monotone"));
            }
            prev = end;
        }
        if prev as usize != self.ant_data.len() {
            return Err(format!(
                "cdg: {} antecedent words stored, ends account for {prev}",
                self.ant_data.len()
            ));
        }
        let mut seen = vec![false; total];
        let mut stack: Vec<ClauseId> = roots.to_vec();
        if let Some(final_ants) = &self.final_antecedents {
            stack.extend_from_slice(final_ants);
        }
        let mut reachable = 0usize;
        while let Some(id) = stack.pop() {
            let idx = id as usize;
            if idx >= total {
                return Err(format!("cdg: node id {id} out of bounds ({total} nodes)"));
            }
            if seen[idx] {
                continue;
            }
            seen[idx] = true;
            reachable += 1;
            if self.leaf[idx] == LEARNED {
                for &ant in self.antecedents_of(idx) {
                    if ant as usize >= total {
                        return Err(format!(
                            "cdg: node {idx} cites antecedent {ant} out of bounds ({total} nodes)"
                        ));
                    }
                    if ant >= id {
                        return Err(format!(
                            "cdg: node {idx} cites antecedent {ant} recorded no earlier than itself"
                        ));
                    }
                    stack.push(ant);
                }
            }
        }
        Ok(reachable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Registers `n` original clauses with input positions `0..n`.
    fn with_originals(n: u32) -> (Cdg, Vec<ClauseId>) {
        let mut cdg = Cdg::new();
        let ids = (0..n).map(|i| cdg.record_original(i)).collect();
        (cdg, ids)
    }

    #[test]
    fn core_of_direct_final_conflict() {
        // Two original clauses resolve directly to the empty clause.
        let (mut cdg, ids) = with_originals(3);
        cdg.record_final(vec![ids[0], ids[2]]);
        assert_eq!(cdg.extract_core(), Some(vec![0, 2]));
    }

    #[test]
    fn core_traverses_learned_chain() {
        // originals: 0,1,2,3. learned a <- {0,1}; learned b <- {a,2};
        // final <- {b}. Core = {0,1,2}; clause 3 is not involved.
        let (mut cdg, ids) = with_originals(4);
        let a = cdg.record_learned(&[ids[0], ids[1]]);
        let b = cdg.record_learned(&[a, ids[2]]);
        cdg.record_final(vec![b]);
        assert_eq!(cdg.extract_core(), Some(vec![0, 1, 2]));
    }

    #[test]
    fn shared_antecedents_visited_once() {
        let (mut cdg, ids) = with_originals(2);
        let a = cdg.record_learned(&[ids[0], ids[1]]);
        let b = cdg.record_learned(&[a, ids[0]]);
        let c = cdg.record_learned(&[a, b, ids[1]]);
        cdg.record_final(vec![b, c]);
        assert_eq!(cdg.extract_core(), Some(vec![0, 1]));
        assert_eq!(cdg.num_nodes(), 3);
        assert_eq!(cdg.num_edges(), 2 + 2 + 3 + 2);
    }

    #[test]
    fn no_final_no_core() {
        let (mut cdg, ids) = with_originals(2);
        cdg.record_learned(&[ids[0]]);
        assert_eq!(cdg.extract_core(), None);
        assert!(!cdg.has_final());
    }

    #[test]
    fn originals_interleave_with_learned_nodes() {
        // The incremental session interleaves: original, learned, original.
        let mut cdg = Cdg::new();
        let o0 = cdg.record_original(0);
        let l = cdg.record_learned(&[o0]);
        let o1 = cdg.record_original(1);
        assert!(o0 < l && l < o1, "ids are allocated from one sequence");
        // A per-call core rooted in both the learned node and the late leaf.
        assert_eq!(cdg.core_from(&[l, o1]), vec![0, 1]);
        assert_eq!(cdg.num_nodes(), 1);
    }

    #[test]
    fn core_from_dedupes_roots() {
        let (mut cdg, ids) = with_originals(1);
        let a = cdg.record_learned(&[ids[0], ids[0]]);
        assert_eq!(cdg.core_from(&[a, a, ids[0]]), vec![0]);
    }

    #[test]
    fn prune_drops_unreachable_chains() {
        // originals 0..3; a <- {0,1}; b <- {a,2}; dead <- {b,3}.
        // Keeping only {a, leaves} must drop b and dead but keep a's chain.
        let (mut cdg, ids) = with_originals(4);
        let a = cdg.record_learned(&[ids[0], ids[1]]);
        let b = cdg.record_learned(&[a, ids[2]]);
        let _dead = cdg.record_learned(&[b, ids[3]]);
        assert_eq!(cdg.num_total_nodes(), 7);
        let roots: Vec<ClauseId> = ids.iter().copied().chain([a]).collect();
        let remap = cdg.prune_reachable(&roots);
        assert_eq!(cdg.num_total_nodes(), 5);
        assert_eq!(cdg.num_nodes(), 1);
        assert_eq!(remap[b as usize], ClauseId::MAX);
        // The surviving node still derives its original core via the
        // remapped IDs.
        let new_a = remap[a as usize];
        assert_eq!(cdg.core_from(&[new_a]), vec![0, 1]);
        // Recording continues seamlessly after a prune.
        let c = cdg.record_learned(&[new_a, remap[ids[3] as usize]]);
        assert_eq!(cdg.core_from(&[c]), vec![0, 1, 3]);
    }

    #[test]
    fn prune_keeps_final_conflict_reachable() {
        let (mut cdg, ids) = with_originals(3);
        let a = cdg.record_learned(&[ids[0], ids[2]]);
        cdg.record_final(vec![a]);
        // No explicit roots: the final conflict alone keeps its chain.
        let remap = cdg.prune_reachable(&ids);
        assert_ne!(remap[a as usize], ClauseId::MAX);
        assert_eq!(cdg.extract_core(), Some(vec![0, 2]));
    }
}
