//! The simplified Conflict Dependency Graph (paper §3.1).
//!
//! To extract an unsatisfiable core, every conflict clause must remember
//! which clauses its resolution used. Chaff-style solvers periodically delete
//! learned clauses, which would break that dependency chain — so, exactly as
//! the paper proposes, we keep a *separate, simplified* CDG: each conflict
//! clause is represented only by a pseudo-ID (an integer) and the list of
//! antecedent pseudo-IDs. The clause database can then delete clause bodies
//! freely; the CDG retains everything needed to identify the unsatisfiable
//! core by a backward traversal from the final conflict.

/// Pseudo-ID of a clause in the CDG. Original clauses use their formula
/// index; conflict clauses get fresh IDs above the original range.
pub(crate) type ClauseId = u32;

/// The simplified conflict dependency graph.
///
/// Nodes are clause pseudo-IDs; the antecedent lists are the edges. The
/// "empty clause" node of the paper's Fig. 2 is stored separately as
/// `final_antecedents`.
///
/// Antecedent lists are stored flat (one data array plus per-node end
/// offsets) rather than as one `Vec` per node: recording a node is then an
/// allocation-free append, which matters because the solver records a node
/// for every level-0 implication and every learned clause.
#[derive(Debug, Default)]
pub(crate) struct Cdg {
    /// Concatenated antecedent lists of the *learned* clauses, in node
    /// order. Original clauses are leaves (no antecedents).
    ant_data: Vec<ClauseId>,
    /// `ant_ends[i]` is the end offset in `ant_data` of the list of the node
    /// with id `num_original + i` (its start is `ant_ends[i - 1]`, or 0).
    ant_ends: Vec<u32>,
    /// Number of original clauses: ids below this bound are leaves.
    num_original: u32,
    /// Antecedents of the final (empty-clause) conflict, once UNSAT is
    /// established.
    final_antecedents: Option<Vec<ClauseId>>,
}

impl Cdg {
    /// Creates an empty CDG over `num_original` original clauses.
    pub fn new(num_original: usize) -> Cdg {
        Cdg {
            ant_data: Vec::new(),
            ant_ends: Vec::new(),
            num_original: num_original as u32,
            final_antecedents: None,
        }
    }

    /// Records a learned clause and returns its pseudo-ID.
    pub fn record_learned(&mut self, antecedents: &[ClauseId]) -> ClauseId {
        let id = self.num_original + self.ant_ends.len() as u32;
        self.ant_data.extend_from_slice(antecedents);
        self.ant_ends.push(self.ant_data.len() as u32);
        id
    }

    /// The antecedent list of the learned node at `idx` (id-relative).
    fn antecedents_of(&self, idx: usize) -> &[ClauseId] {
        let start = if idx == 0 {
            0
        } else {
            self.ant_ends[idx - 1] as usize
        };
        &self.ant_data[start..self.ant_ends[idx] as usize]
    }

    /// Records the antecedents of the final conflict (the empty-clause node).
    pub fn record_final(&mut self, antecedents: Vec<ClauseId>) {
        self.final_antecedents = Some(antecedents);
    }

    /// Returns true once the final conflict has been recorded.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn has_final(&self) -> bool {
        self.final_antecedents.is_some()
    }

    /// Number of learned-clause nodes.
    pub fn num_nodes(&self) -> u64 {
        self.ant_ends.len() as u64
    }

    /// Number of antecedent edges.
    pub fn num_edges(&self) -> u64 {
        self.ant_data.len() as u64
            + self
                .final_antecedents
                .as_ref()
                .map_or(0, |a| a.len() as u64)
    }

    /// Traverses the CDG backward from the final conflict and returns the
    /// sorted indices of the original clauses that are reachable — the
    /// unsatisfiable core.
    ///
    /// Returns `None` if no final conflict was recorded (the instance was not
    /// proved unsatisfiable, or CDG recording was disabled).
    pub fn extract_core(&self) -> Option<Vec<usize>> {
        let final_ants = self.final_antecedents.as_ref()?;
        let mut core = Vec::new();
        let mut seen_original = vec![false; self.num_original as usize];
        let mut seen_learned = vec![false; self.ant_ends.len()];
        let mut stack: Vec<ClauseId> = final_ants.clone();
        while let Some(id) = stack.pop() {
            if id < self.num_original {
                let idx = id as usize;
                if !seen_original[idx] {
                    seen_original[idx] = true;
                    core.push(idx);
                }
            } else {
                let idx = (id - self.num_original) as usize;
                if !seen_learned[idx] {
                    seen_learned[idx] = true;
                    stack.extend_from_slice(self.antecedents_of(idx));
                }
            }
        }
        core.sort_unstable();
        Some(core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_of_direct_final_conflict() {
        // Two original clauses resolve directly to the empty clause.
        let mut cdg = Cdg::new(3);
        cdg.record_final(vec![0, 2]);
        assert_eq!(cdg.extract_core(), Some(vec![0, 2]));
    }

    #[test]
    fn core_traverses_learned_chain() {
        // originals: 0,1,2,3. learned 4 <- {0,1}; learned 5 <- {4,2};
        // final <- {5}. Core = {0,1,2}; clause 3 is not involved.
        let mut cdg = Cdg::new(4);
        let l4 = cdg.record_learned(&[0, 1]);
        assert_eq!(l4, 4);
        let l5 = cdg.record_learned(&[l4, 2]);
        cdg.record_final(vec![l5]);
        assert_eq!(cdg.extract_core(), Some(vec![0, 1, 2]));
    }

    #[test]
    fn shared_antecedents_visited_once() {
        let mut cdg = Cdg::new(2);
        let a = cdg.record_learned(&[0, 1]);
        let b = cdg.record_learned(&[a, 0]);
        let c = cdg.record_learned(&[a, b, 1]);
        cdg.record_final(vec![b, c]);
        assert_eq!(cdg.extract_core(), Some(vec![0, 1]));
        assert_eq!(cdg.num_nodes(), 3);
        assert_eq!(cdg.num_edges(), 2 + 2 + 3 + 2);
    }

    #[test]
    fn no_final_no_core() {
        let mut cdg = Cdg::new(2);
        cdg.record_learned(&[0]);
        assert_eq!(cdg.extract_core(), None);
        assert!(!cdg.has_final());
    }
}
