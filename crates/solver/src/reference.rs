//! Trivial reference solvers used as test oracles.
//!
//! These are deliberately simple (no learning, no heuristics) so their
//! correctness is evident by inspection; the test suites cross-check the CDCL
//! solver against them on small random formulas.

use rbmc_cnf::CnfFormula;

/// Decides satisfiability by exhaustive enumeration.
///
/// Intended for formulas with at most ~20 variables; the cost is
/// `O(2^num_vars · formula size)`.
///
/// # Panics
///
/// Panics if the formula has more than 26 variables (the enumeration would
/// not terminate in reasonable time).
///
/// # Examples
///
/// ```
/// use rbmc_cnf::parse_dimacs;
/// use rbmc_solver::brute_force_sat;
///
/// let f = parse_dimacs("p cnf 2 2\n1 0\n-1 0\n")?;
/// assert_eq!(brute_force_sat(&f), None); // unsatisfiable
/// # Ok::<(), rbmc_cnf::ParseDimacsError>(())
/// ```
pub fn brute_force_sat(formula: &CnfFormula) -> Option<Vec<bool>> {
    let n = formula.num_vars();
    assert!(n <= 26, "brute force limited to 26 variables, got {n}");
    for bits in 0u64..(1u64 << n) {
        let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        if formula.evaluate(&assignment) == Some(true) {
            return Some(assignment);
        }
    }
    None
}

/// Decides satisfiability with a plain recursive DPLL (unit propagation +
/// chronological backtracking, first-unassigned-variable branching).
///
/// Usable up to a few hundred variables on easy instances; used as a second,
/// independent oracle.
///
/// # Examples
///
/// ```
/// use rbmc_cnf::parse_dimacs;
/// use rbmc_solver::reference_dpll;
///
/// let f = parse_dimacs("p cnf 2 2\n1 2 0\n-1 0\n")?;
/// let model = reference_dpll(&f).expect("satisfiable");
/// assert_eq!(f.evaluate(&model), Some(true));
/// # Ok::<(), rbmc_cnf::ParseDimacsError>(())
/// ```
pub fn reference_dpll(formula: &CnfFormula) -> Option<Vec<bool>> {
    let mut assignment: Vec<Option<bool>> = vec![None; formula.num_vars()];
    if dpll(formula, &mut assignment) {
        Some(assignment.into_iter().map(|v| v.unwrap_or(false)).collect())
    } else {
        None
    }
}

fn dpll(formula: &CnfFormula, assignment: &mut Vec<Option<bool>>) -> bool {
    // Unit propagation to a fixed point.
    let mut trail: Vec<usize> = Vec::new();
    loop {
        let mut changed = false;
        for clause in formula {
            match clause.evaluate_partial(assignment) {
                Some(true) => continue,
                Some(false) => {
                    for v in trail {
                        assignment[v] = None;
                    }
                    return false;
                }
                None => {
                    let mut free = clause
                        .lits()
                        .iter()
                        .filter(|l| assignment[l.var().index()].is_none());
                    let first = free.next().expect("undetermined clause has a free literal");
                    if free.next().is_none() {
                        let v = first.var().index();
                        assignment[v] = Some(first.is_positive());
                        trail.push(v);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Pick a branching variable.
    let branch = (0..assignment.len()).find(|&v| assignment[v].is_none());
    let result = match branch {
        None => formula.evaluate_partial(assignment) == Some(true),
        Some(v) => {
            let mut ok = false;
            for value in [true, false] {
                assignment[v] = Some(value);
                if dpll(formula, assignment) {
                    ok = true;
                    break;
                }
                assignment[v] = None;
            }
            ok
        }
    };
    if !result {
        for v in trail {
            assignment[v] = None;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbmc_cnf::parse_dimacs;

    #[test]
    fn brute_force_finds_model() {
        let f = parse_dimacs("p cnf 3 3\n1 2 0\n-1 3 0\n-2 0\n").unwrap();
        let m = brute_force_sat(&f).unwrap();
        assert_eq!(f.evaluate(&m), Some(true));
    }

    #[test]
    fn brute_force_detects_unsat() {
        let f = parse_dimacs("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        assert!(brute_force_sat(&f).is_none());
    }

    #[test]
    fn dpll_agrees_with_brute_force_on_small_formulas() {
        let cases = [
            "p cnf 3 4\n1 2 3 0\n-1 -2 0\n-2 -3 0\n-1 -3 0\n",
            "p cnf 2 3\n1 2 0\n-1 2 0\n-2 0\n",
            "p cnf 4 4\n1 2 0\n3 4 0\n-1 -3 0\n-2 -4 0\n",
            "p cnf 0 0\n",
        ];
        for text in cases {
            let f = parse_dimacs(text).unwrap();
            let bf = brute_force_sat(&f).is_some();
            let dp = reference_dpll(&f).is_some();
            assert_eq!(bf, dp, "oracles disagree on {text:?}");
        }
    }

    #[test]
    fn dpll_model_is_valid() {
        let f = parse_dimacs("p cnf 5 5\n1 2 0\n-2 3 0\n-3 4 0\n-4 5 0\n-5 -1 0\n").unwrap();
        let m = reference_dpll(&f).unwrap();
        assert_eq!(f.evaluate(&m), Some(true));
    }

    #[test]
    fn dpll_empty_clause_unsat() {
        let f = parse_dimacs("p cnf 1 1\n0\n").unwrap();
        assert!(reference_dpll(&f).is_none());
    }
}
