//! Three-valued logic for partial assignments.

use std::fmt;
use std::ops::Not;

/// A lifted Boolean: true, false, or unassigned.
///
/// # Examples
///
/// ```
/// use rbmc_solver::LBool;
///
/// assert_eq!(LBool::from(true), LBool::True);
/// assert_eq!(!LBool::True, LBool::False);
/// assert_eq!(!LBool::Undef, LBool::Undef);
/// assert_eq!(LBool::True.to_bool(), Some(true));
/// assert_eq!(LBool::Undef.to_bool(), None);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LBool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Not assigned.
    #[default]
    Undef,
}

impl LBool {
    /// Returns true if this is [`LBool::True`].
    #[inline]
    pub fn is_true(self) -> bool {
        self == LBool::True
    }

    /// Returns true if this is [`LBool::False`].
    #[inline]
    pub fn is_false(self) -> bool {
        self == LBool::False
    }

    /// Returns true if this is [`LBool::Undef`].
    #[inline]
    pub fn is_undef(self) -> bool {
        self == LBool::Undef
    }

    /// Converts to `Option<bool>` (`None` when unassigned).
    #[inline]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// Applies a phase: returns `self` when `negate` is false, `!self`
    /// otherwise. Used to evaluate a literal from its variable's value.
    #[inline]
    pub fn xor(self, negate: bool) -> LBool {
        if negate {
            !self
        } else {
            self
        }
    }
}

impl From<bool> for LBool {
    #[inline]
    fn from(b: bool) -> LBool {
        if b {
            LBool::True
        } else {
            LBool::False
        }
    }
}

impl Not for LBool {
    type Output = LBool;

    #[inline]
    fn not(self) -> LBool {
        match self {
            LBool::True => LBool::False,
            LBool::False => LBool::True,
            LBool::Undef => LBool::Undef,
        }
    }
}

impl fmt::Debug for LBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LBool::True => "T",
            LBool::False => "F",
            LBool::Undef => "?",
        };
        write!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(LBool::from(true).to_bool(), Some(true));
        assert_eq!(LBool::from(false).to_bool(), Some(false));
        assert_eq!(LBool::Undef.to_bool(), None);
    }

    #[test]
    fn negation() {
        assert_eq!(!LBool::True, LBool::False);
        assert_eq!(!LBool::False, LBool::True);
        assert_eq!(!LBool::Undef, LBool::Undef);
    }

    #[test]
    fn xor_phase() {
        assert_eq!(LBool::True.xor(false), LBool::True);
        assert_eq!(LBool::True.xor(true), LBool::False);
        assert_eq!(LBool::Undef.xor(true), LBool::Undef);
    }

    #[test]
    fn default_is_undef() {
        assert_eq!(LBool::default(), LBool::Undef);
        assert!(LBool::default().is_undef());
    }
}
