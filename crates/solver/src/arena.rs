//! Flat clause storage: a MiniSat-style arena.
//!
//! All clauses — original and learned — live in one contiguous `Vec<u32>` as
//! `[header | lits…]` records addressed by a [`ClauseRef`] (the word offset
//! of the header). BCP therefore touches one cache line per clause instead
//! of chasing `Vec<ClauseData>` → per-clause `Vec<Lit>` pointers, and
//! database reduction *compacts* the learned region (relocating the
//! survivors) instead of leaving tombstones the hot path must skip.
//!
//! Record layout (all `u32` words):
//!
//! ```text
//! word 0   len << 2 | deleted << 1 | learned
//! word 1   activity (times used as a conflict antecedent)
//! word 2   CDG pseudo-ID (original: input position; learned: assigned id)
//! word 3…  literal codes (Lit::code), len of them
//! ```
//!
//! Original clauses are allocated first and are never deleted, so the
//! original region is offset-stable for the whole solve; only learned
//! records move during [`ClauseArena::compact_learned`], which reports the
//! relocation map so the solver can patch its `reasons` (watch lists are
//! rebuilt wholesale — cheaper and tombstone-free).

use rbmc_cnf::Lit;

/// Reference to a stored clause: the word offset of its header.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct ClauseRef(u32);

impl ClauseRef {
    /// Re-creates a reference from a known-valid header offset (used when
    /// relocating references after compaction).
    #[inline]
    pub(crate) fn at(offset: u32) -> ClauseRef {
        ClauseRef(offset)
    }

    /// The arena word offset of the clause header.
    #[inline]
    pub(crate) fn offset(self) -> u32 {
        self.0
    }
}

const HEADER_WORDS: u32 = 3;
const LEARNED_BIT: u32 = 0b01;
const DELETED_BIT: u32 = 0b10;
const LEN_SHIFT: u32 = 2;

/// The flat clause database.
#[derive(Debug, Default)]
pub(crate) struct ClauseArena {
    data: Vec<u32>,
}

impl ClauseArena {
    /// Creates an empty arena.
    pub(crate) fn new() -> ClauseArena {
        ClauseArena::default()
    }

    /// Appends a clause record and returns its reference.
    pub(crate) fn alloc(&mut self, lits: &[Lit], learned: bool, cdg_id: u32) -> ClauseRef {
        let cref = ClauseRef(self.data.len() as u32);
        let flags = if learned { LEARNED_BIT } else { 0 };
        self.data.reserve(HEADER_WORDS as usize + lits.len());
        self.data.push((lits.len() as u32) << LEN_SHIFT | flags);
        self.data.push(0); // activity
        self.data.push(cdg_id);
        self.data.extend(lits.iter().map(|l| l.code() as u32));
        cref
    }

    /// One-past-the-end offset (where the next record will be allocated).
    #[inline]
    pub(crate) fn end_offset(&self) -> u32 {
        self.data.len() as u32
    }

    /// Number of literals in the clause.
    #[inline]
    pub(crate) fn len(&self, c: ClauseRef) -> usize {
        (self.data[c.0 as usize] >> LEN_SHIFT) as usize
    }

    /// Whether the clause was learned (vs original).
    #[inline]
    pub(crate) fn is_learned(&self, c: ClauseRef) -> bool {
        self.data[c.0 as usize] & LEARNED_BIT != 0
    }

    /// Whether the clause is marked for deletion (transient: only between
    /// [`Self::mark_deleted`] and the next [`Self::compact_learned`]).
    #[inline]
    pub(crate) fn is_deleted(&self, c: ClauseRef) -> bool {
        self.data[c.0 as usize] & DELETED_BIT != 0
    }

    /// Marks the clause for deletion by the next compaction.
    #[inline]
    pub(crate) fn mark_deleted(&mut self, c: ClauseRef) {
        self.data[c.0 as usize] |= DELETED_BIT;
    }

    /// The `i`-th literal of the clause.
    #[inline]
    pub(crate) fn lit(&self, c: ClauseRef, i: usize) -> Lit {
        Lit::from_code(self.data[(c.0 + HEADER_WORDS) as usize + i] as usize)
    }

    /// Swaps two literals of the clause (BCP watch maintenance).
    #[inline]
    pub(crate) fn swap_lits(&mut self, c: ClauseRef, i: usize, j: usize) {
        let base = (c.0 + HEADER_WORDS) as usize;
        self.data.swap(base + i, base + j);
    }

    /// Current activity counter of the clause.
    #[inline]
    pub(crate) fn activity(&self, c: ClauseRef) -> u32 {
        self.data[c.0 as usize + 1]
    }

    /// Sets the activity counter.
    #[inline]
    pub(crate) fn set_activity(&mut self, c: ClauseRef, value: u32) {
        self.data[c.0 as usize + 1] = value;
    }

    /// Increments the activity counter (saturating).
    #[inline]
    pub(crate) fn bump_activity(&mut self, c: ClauseRef) {
        let slot = &mut self.data[c.0 as usize + 1];
        *slot = slot.saturating_add(1);
    }

    /// The clause's CDG pseudo-ID (for originals, the input position).
    #[inline]
    pub(crate) fn cdg_id(&self, c: ClauseRef) -> u32 {
        self.data[c.0 as usize + 2]
    }

    /// Overwrites the clause's CDG pseudo-ID (CDG pruning renumbers nodes).
    #[inline]
    pub(crate) fn set_cdg_id(&mut self, c: ClauseRef, id: u32) {
        self.data[c.0 as usize + 2] = id;
    }

    /// The first clause record, if any.
    pub(crate) fn first(&self) -> Option<ClauseRef> {
        if self.data.is_empty() {
            None
        } else {
            Some(ClauseRef(0))
        }
    }

    /// The record following `c`, if any.
    pub(crate) fn next(&self, c: ClauseRef) -> Option<ClauseRef> {
        let next = c.0 + HEADER_WORDS + self.len(c) as u32;
        if next < self.data.len() as u32 {
            Some(ClauseRef(next))
        } else {
            None
        }
    }

    /// Removes the records marked deleted at or after `first_learned`,
    /// shifting the survivors down, and returns the relocation map
    /// `(old offset, new offset)` of the moved survivors in increasing old
    /// order (suitable for binary search).
    ///
    /// Records below `first_learned` (the original clauses) never move.
    pub(crate) fn compact_learned(&mut self, first_learned: u32) -> Vec<(u32, u32)> {
        let mut remap = Vec::new();
        let mut read = first_learned as usize;
        let mut write = first_learned as usize;
        let end = self.data.len();
        while read < end {
            let header = self.data[read];
            let record = HEADER_WORDS as usize + (header >> LEN_SHIFT) as usize;
            if header & DELETED_BIT == 0 {
                if read != write {
                    self.data.copy_within(read..read + record, write);
                    remap.push((read as u32, write as u32));
                }
                write += record;
            }
            read += record;
        }
        self.data.truncate(write);
        remap
    }

    /// Halves the activity of every record at or after `first_learned`
    /// (applied after each reduction so future reductions favour recent
    /// relevance).
    pub(crate) fn halve_learned_activities(&mut self, first_learned: u32) {
        let mut cursor = first_learned as usize;
        while cursor < self.data.len() {
            let len = (self.data[cursor] >> LEN_SHIFT) as usize;
            self.data[cursor + 1] /= 2;
            cursor += HEADER_WORDS as usize + len;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbmc_cnf::Var;

    fn lits(ns: &[i64]) -> Vec<Lit> {
        ns.iter().map(|&n| Lit::from_dimacs(n)).collect()
    }

    #[test]
    fn alloc_and_read_back() {
        let mut arena = ClauseArena::new();
        let a = arena.alloc(&lits(&[1, -2, 3]), false, 0);
        let b = arena.alloc(&lits(&[-1, 4]), true, 7);
        assert_eq!(arena.len(a), 3);
        assert_eq!(arena.lit(a, 1), Var::new(1).negative());
        assert!(!arena.is_learned(a));
        assert!(arena.is_learned(b));
        assert_eq!(arena.cdg_id(b), 7);
        assert_eq!(arena.first(), Some(a));
        assert_eq!(arena.next(a), Some(b));
        assert_eq!(arena.next(b), None);
    }

    #[test]
    fn swap_and_activity() {
        let mut arena = ClauseArena::new();
        let c = arena.alloc(&lits(&[1, 2, 3]), true, 0);
        arena.swap_lits(c, 0, 2);
        assert_eq!(arena.lit(c, 0), Lit::from_dimacs(3));
        assert_eq!(arena.lit(c, 2), Lit::from_dimacs(1));
        arena.bump_activity(c);
        arena.bump_activity(c);
        assert_eq!(arena.activity(c), 2);
        arena.set_activity(c, 9);
        assert_eq!(arena.activity(c), 9);
    }

    #[test]
    fn compaction_relocates_survivors() {
        let mut arena = ClauseArena::new();
        let orig = arena.alloc(&lits(&[1, 2]), false, 0);
        let first_learned = arena.end_offset();
        let l1 = arena.alloc(&lits(&[3, 4, 5]), true, 1);
        let l2 = arena.alloc(&lits(&[-3, -4, -5]), true, 2);
        let l3 = arena.alloc(&lits(&[1, 5]), true, 3);
        arena.mark_deleted(l1);
        let remap = arena.compact_learned(first_learned);
        // l2 and l3 shift down by one record; orig is untouched.
        assert_eq!(remap.len(), 2);
        assert_eq!(remap[0].0, l2.offset());
        assert_eq!(remap[1].0, l3.offset());
        let new_l2 = ClauseRef(remap[0].1);
        let new_l3 = ClauseRef(remap[1].1);
        assert_eq!(arena.lit(new_l2, 0), Lit::from_dimacs(-3));
        assert_eq!(arena.cdg_id(new_l2), 2);
        assert_eq!(arena.lit(new_l3, 1), Lit::from_dimacs(5));
        assert_eq!(arena.lit(orig, 0), Lit::from_dimacs(1));
        assert_eq!(arena.next(new_l3), None);
    }

    #[test]
    fn empty_records_iterate() {
        let mut arena = ClauseArena::new();
        let t = arena.alloc(&[], false, 0); // tautology / empty clause record
        let c = arena.alloc(&lits(&[1]), false, 1);
        assert_eq!(arena.len(t), 0);
        assert_eq!(arena.next(t), Some(c));
    }

    #[test]
    fn halving_applies_to_learned_region() {
        let mut arena = ClauseArena::new();
        arena.alloc(&lits(&[1, 2]), false, 0);
        let first_learned = arena.end_offset();
        let l = arena.alloc(&lits(&[3, 4]), true, 1);
        arena.set_activity(l, 9);
        arena.halve_learned_activities(first_learned);
        assert_eq!(arena.activity(l), 4);
    }
}
