//! The CDCL solver: DLL search with watched-literal BCP, first-UIP learning,
//! restarts, clause-database reduction, and CDG-based core extraction.

use std::fmt;
use std::time::Instant;

use rbmc_cnf::{Clause, CnfFormula, Lit, Var};

use crate::arena::{ClauseArena, ClauseRef};
use crate::cdg::{Cdg, ClauseId};
use crate::order::LitOrder;
use crate::proof::ProofLog;
use crate::{LBool, Limits, OrderMode, SolverStats};

// The auditor is a child module so it can read the solver's private fields
// directly instead of a sanitized accessor view.
#[cfg(feature = "debug-invariants")]
#[path = "audit.rs"]
mod audit;

/// Outcome of a solve call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SolveResult {
    /// A satisfying assignment was found (see [`Solver::model`]).
    Sat,
    /// The formula was proven unsatisfiable (see [`Solver::core_clauses`]).
    Unsat,
    /// A resource limit was hit before an answer was found; the search can be
    /// resumed by calling [`Solver::solve_limited`] again.
    Unknown,
}

/// Configuration of the solver.
///
/// The defaults replicate the paper's Chaff setup: literal-based VSIDS with
/// periodic halving, restarts, learned-clause deletion, and CDG recording on
/// (the refinement needs cores; disable it to measure the §3.1 overhead).
///
/// # Examples
///
/// ```
/// use rbmc_solver::{OrderMode, SolverOptions};
///
/// let opts = SolverOptions {
///     order_mode: OrderMode::Dynamic { divisor: 64 },
///     ..SolverOptions::default()
/// };
/// assert!(opts.record_cdg);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolverOptions {
    /// How decisions combine `bmc_score` and `cha_score` (§3.3).
    pub order_mode: OrderMode,
    /// Record the simplified conflict dependency graph so an unsatisfiable
    /// core can be extracted (§3.1). Costs a few percent of runtime.
    pub record_cdg: bool,
    /// Conflicts between `cha_score` halvings (Chaff updated periodically;
    /// 256 is the conventional period).
    pub halve_interval: u64,
    /// Luby restart unit in conflicts; `0` disables restarts.
    pub luby_unit: u64,
    /// Enable periodic deletion of irrelevant learned clauses.
    pub reduce_db: bool,
    /// Learned clauses kept before the first reduction.
    pub reduce_base: u64,
    /// Additional learned clauses allowed after each reduction.
    pub reduce_inc: u64,
}

impl Default for SolverOptions {
    fn default() -> SolverOptions {
        SolverOptions {
            order_mode: OrderMode::Standard,
            record_cdg: true,
            halve_interval: 256,
            luby_unit: 128,
            reduce_db: true,
            reduce_base: 2000,
            reduce_inc: 1000,
        }
    }
}

/// A long-clause watch entry: the watching clause and a blocker literal
/// whose truth lets BCP skip the clause without touching its body.
#[derive(Clone, Copy, Debug)]
struct LongWatch {
    clause: ClauseRef,
    blocker: Lit,
}

/// A binary-clause watch entry: the *other* literal of the clause is stored
/// inline, so BCP decides unit/conflict from the watcher alone — zero clause
/// dereferences. `clause` is only consulted as the reason/conflict reference.
#[derive(Clone, Copy, Debug)]
struct BinWatch {
    clause: ClauseRef,
    implied: Lit,
}

/// The two-tier watch lists of one literal: binary clauses (implied literal
/// inline) and long clauses (blocker watches over the arena).
#[derive(Debug, Default)]
struct WatchLists {
    bins: Vec<BinWatch>,
    longs: Vec<LongWatch>,
}

/// A Chaff-style CDCL SAT solver (see the crate docs for the feature list).
///
/// # Examples
///
/// Finding a model:
///
/// ```
/// use rbmc_cnf::{CnfFormula, Lit};
/// use rbmc_solver::{SolveResult, Solver};
///
/// let mut f = CnfFormula::new();
/// let x = f.new_var();
/// let y = f.new_var();
/// f.add_clause([x.positive(), y.positive()]);
/// f.add_clause([x.negative()]);
/// let mut solver = Solver::from_formula(&f);
/// assert_eq!(solver.solve(), SolveResult::Sat);
/// let model = solver.model().expect("model after SAT");
/// assert!(!model[x.index()] && model[y.index()]);
/// ```
pub struct Solver {
    opts: SolverOptions,
    /// Flat clause storage: the pre-session originals first (offset-stable),
    /// then learned clauses interleaved with originals added between solve
    /// episodes. CDG pseudo-IDs live in the record headers.
    clauses: ClauseArena,
    /// Arena reference of each original clause, indexed by input position.
    /// Entries at or above `first_learned` are patched after compaction.
    original_refs: Vec<ClauseRef>,
    /// Number of original (input) clauses.
    num_original: usize,
    /// Arena offset where the compactable region starts (set at the first
    /// solve call; the region below it never moves). Learned clauses and
    /// originals added mid-session live above it and may be relocated by
    /// compaction — only learned records are ever deleted.
    first_learned: u32,
    /// Total literal occurrences in the original formula — the paper's
    /// "number of original literals" used by the dynamic switch.
    num_original_lits: u64,
    watches: Vec<WatchLists>,
    values: Vec<LBool>,
    levels: Vec<u32>,
    reasons: Vec<Option<ClauseRef>>,
    /// CDG node standing for the level-0 unit fact of a variable.
    unit_node: Vec<Option<ClauseId>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    order: LitOrder,
    cdg: Cdg,
    stats: SolverStats,
    /// Ranking installed by [`Solver::set_var_ranking`], applied at setup.
    bmc_scores: Vec<u64>,
    /// Pending unit original clauses, enqueued at setup.
    pending_units: Vec<ClauseRef>,
    /// An empty original clause, if one was added.
    empty_clause: Option<ClauseRef>,
    result: Option<SolveResult>,
    model: Option<Vec<bool>>,
    core: Option<Vec<usize>>,
    /// Assumption literals of the current solve episode, in order; each is
    /// decided as a pseudo-decision at levels `1..=assumptions.len()` before
    /// any heuristic decision.
    assumptions: Vec<Lit>,
    /// The subset of the current episode's assumptions involved in the final
    /// conflict, when the episode ended UNSAT because an assumption failed.
    failed: Vec<Lit>,
    /// False once the clause database alone (no assumptions) was proven
    /// unsatisfiable; every later episode returns UNSAT immediately.
    ok: bool,
    started: bool,
    /// Dynamic mode has fallen back to pure VSIDS (this episode).
    switched: bool,
    /// `stats.decisions` at the start of the current episode (the dynamic
    /// switch of §3.3 counts decisions per instance, i.e. per episode).
    episode_decisions_base: u64,
    conflicts_at_last_halve: u64,
    conflicts_at_restart: u64,
    restart_number: u64,
    live_learned: u64,
    reduce_threshold: u64,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    /// Scratch antecedent list of level-0 unit-fact CDG nodes (reused so a
    /// level-0 implication records its node allocation-free).
    unit_ants: Vec<ClauseId>,
    /// Scratch antecedent list of conflict analysis.
    conflict_ants: Vec<ClauseId>,
    /// Attached clausal proof log, if any (see [`Solver::set_proof_log`]).
    proof: Option<Box<dyn ProofLog>>,
    /// Next proof line id to hand out (ids start at 1, LRAT-style).
    next_proof_id: u64,
    /// Proof line id of each CDG node, indexed by node id. Compacted in
    /// lockstep with the CDG by [`Solver::prune_cdg`]; proof ids themselves
    /// are never renumbered, so emitted hints stay valid forever.
    proof_of_cdg: Vec<u64>,
}

impl fmt::Debug for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Solver")
            .field("num_vars", &self.num_vars())
            .field("num_original", &self.num_original)
            .field("result", &self.result)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver with default options.
    pub fn new() -> Solver {
        Solver::with_options(SolverOptions::default())
    }

    /// Creates an empty solver with the given options.
    pub fn with_options(opts: SolverOptions) -> Solver {
        Solver {
            opts,
            clauses: ClauseArena::new(),
            original_refs: Vec::new(),
            num_original: 0,
            first_learned: 0,
            num_original_lits: 0,
            watches: Vec::new(),
            values: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            unit_node: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            order: LitOrder::new(0),
            cdg: Cdg::new(),
            stats: SolverStats::new(),
            bmc_scores: Vec::new(),
            pending_units: Vec::new(),
            empty_clause: None,
            result: None,
            model: None,
            core: None,
            assumptions: Vec::new(),
            failed: Vec::new(),
            ok: true,
            started: false,
            switched: false,
            episode_decisions_base: 0,
            conflicts_at_last_halve: 0,
            conflicts_at_restart: 0,
            restart_number: 0,
            live_learned: 0,
            reduce_threshold: opts.reduce_base,
            seen: Vec::new(),
            unit_ants: Vec::new(),
            conflict_ants: Vec::new(),
            proof: None,
            next_proof_id: 0,
            proof_of_cdg: Vec::new(),
        }
    }

    /// Creates a solver loaded with `formula` (default options).
    pub fn from_formula(formula: &CnfFormula) -> Solver {
        Solver::from_formula_with(formula, SolverOptions::default())
    }

    /// Creates a solver loaded with `formula` and the given options.
    pub fn from_formula_with(formula: &CnfFormula, opts: SolverOptions) -> Solver {
        let mut solver = Solver::with_options(opts);
        solver.reserve_vars(formula.num_vars());
        for clause in formula {
            solver.add_clause(clause.lits());
        }
        solver
    }

    /// Ensures the solver knows about variables `0..num_vars`.
    pub fn reserve_vars(&mut self, num_vars: usize) {
        if num_vars <= self.values.len() {
            return;
        }
        self.values.resize(num_vars, LBool::Undef);
        self.levels.resize(num_vars, 0);
        self.reasons.resize(num_vars, None);
        self.unit_node.resize(num_vars, None);
        self.seen.resize(num_vars, false);
        self.watches.resize_with(2 * num_vars, WatchLists::default);
        self.order.grow(num_vars);
    }

    /// Number of variables known to the solver.
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Number of original (input) clauses.
    pub fn num_original_clauses(&self) -> usize {
        self.num_original
    }

    /// Total literal occurrences over the original clauses (the paper's
    /// `#original literals`, the base of the dynamic-switch threshold).
    pub fn num_original_literals(&self) -> u64 {
        self.num_original_lits
    }

    /// The options this solver was built with.
    pub fn options(&self) -> &SolverOptions {
        &self.opts
    }

    /// Adds an original clause. The clause's ID for core reporting is its
    /// 0-based position in the order of `add_clause` calls.
    ///
    /// Duplicate literals are removed internally; a clause containing both
    /// phases of a variable is stored but ignored by the search (it is a
    /// tautology and can never be part of an unsatisfiable core).
    ///
    /// May be called at any time, including **between solve episodes** — the
    /// incremental session API the BMC engine appends each new frame through.
    /// A mid-session addition undoes any search decisions (backtracks to
    /// level 0), then attaches the clause against the current root-level
    /// assignment: already-falsified literals are skipped when choosing
    /// watches, a clause left unit propagates immediately, and a clause with
    /// no true or free literal makes the solver permanently unsatisfiable.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        self.backtrack(0);
        // The raw literal count feeds both the initial cha_score and the
        // dynamic-switch threshold.
        self.num_original_lits += lits.len() as u64;
        let max_var = lits.iter().map(|l| l.var().index() + 1).max().unwrap_or(0);
        self.reserve_vars(max_var);
        for &lit in lits {
            self.order.add_initial_count(lit, 1);
        }

        let clause = Clause::new(lits.to_vec());
        let (mut stored, tautology) = match clause.normalized() {
            None => (Vec::new(), true),
            Some(n) => (n.into_lits(), false),
        };
        let input_pos = self.original_refs.len() as u32;
        let cdg_id = if self.opts.record_cdg {
            self.cdg.record_original(input_pos)
        } else {
            // Recording is off: the header slot is never read.
            u32::MAX
        };
        if self.proof.is_some() {
            let pid = self.fresh_proof_id();
            self.map_proof(cdg_id, pid);
            // A tautology is stored body-less; its axiom line keeps the
            // literals as given (harmless to a checker, and the axiom
            // sequence must mirror `add_clause` order exactly for the
            // formula hash to bind the certificate to this input).
            let body: &[Lit] = if tautology { lits } else { &stored };
            self.proof.as_mut().expect("checked above").axiom(pid, body);
        }
        if tautology {
            let cref = self.clauses.alloc(&stored, false, cdg_id);
            self.original_refs.push(cref);
            self.stats.tautologies += 1;
        } else if !self.started {
            let cref = self.clauses.alloc(&stored, false, cdg_id);
            self.original_refs.push(cref);
            match stored.len() {
                0 => {
                    self.empty_clause.get_or_insert(cref);
                }
                1 => self.pending_units.push(cref),
                _ => self.watch_clause(cref, stored.len(), stored[0], stored[1]),
            }
        } else {
            // Mid-session: bring up to two non-falsified literals to the
            // watch slots before storing.
            let mut watchable = [0usize; 2];
            let mut found = 0;
            for (i, &lit) in stored.iter().enumerate() {
                if self.lit_value(lit) != LBool::False {
                    watchable[found] = i;
                    found += 1;
                    if found == 2 {
                        break;
                    }
                }
            }
            if found >= 1 {
                stored.swap(0, watchable[0]);
            }
            if found == 2 {
                // `watchable` is strictly increasing, so slot `watchable[1]`
                // was not disturbed by the first swap.
                stored.swap(1, watchable[1]);
            }
            let cref = self.clauses.alloc(&stored, false, cdg_id);
            self.original_refs.push(cref);
            if stored.len() >= 2 {
                self.watch_clause(cref, stored.len(), stored[0], stored[1]);
            }
            match found {
                0 => {
                    // Every literal is false at the root (or the clause is
                    // empty): unsatisfiable no matter the assumptions.
                    self.record_conflict_clause_final(cref);
                }
                1 if self.lit_value(stored[0]) == LBool::Undef => {
                    // Unit under the root-level assignment.
                    self.enqueue(stored[0], Some(cref));
                }
                _ => {}
            }
        }
        self.num_original = self.original_refs.len();
        self.note_arena_peak();
    }

    /// Records the arena's current size into the peak-bytes high-water mark
    /// (called after every clause allocation; one compare per clause).
    fn note_arena_peak(&mut self) {
        let bytes = u64::from(self.clauses.end_offset()) * 4;
        if bytes > self.stats.arena_peak_bytes {
            self.stats.arena_peak_bytes = bytes;
        }
    }

    /// Installs the per-variable `bmc_score` ranking (§3.2). Scores default
    /// to zero for variables beyond the end of `scores`. The ranking matters
    /// only when [`SolverOptions::order_mode`] is static or dynamic.
    ///
    /// May be called **between solve episodes**: each episode re-seeds the
    /// decision ordering from the ranking installed last, which is how the
    /// paper's per-depth `varRank` refresh reaches a live session solver.
    pub fn set_var_ranking(&mut self, scores: &[u64]) {
        self.bmc_scores = scores.to_vec();
    }

    /// Attaches a clausal proof log (see the [`crate::ProofLog`] docs for
    /// the event vocabulary). From here on every original clause, learned
    /// clause, root-level unit fact, deletion, and per-episode UNSAT final
    /// is recorded, with LRAT antecedent hints sourced from the CDG.
    ///
    /// # Panics
    ///
    /// Panics if CDG recording is disabled (hints come from the CDG) or if
    /// clauses were already added (earlier clauses would have no proof
    /// lines, leaving every certificate incomplete).
    pub fn set_proof_log(&mut self, log: Box<dyn ProofLog>) {
        assert!(
            self.opts.record_cdg,
            "proof logging requires CDG recording (SolverOptions::record_cdg)"
        );
        assert!(
            self.original_refs.is_empty() && !self.started,
            "proof log must be attached before the first clause"
        );
        self.proof = Some(log);
    }

    /// The attached proof log, if any (the auditor and tests cross-check
    /// its live-line bookkeeping against the clause database).
    pub fn proof_log(&self) -> Option<&dyn ProofLog> {
        self.proof.as_deref()
    }

    /// Hands out the next proof line id (strictly increasing from 1).
    fn fresh_proof_id(&mut self) -> u64 {
        self.next_proof_id += 1;
        self.next_proof_id
    }

    /// Records `pid` as the proof line of CDG node `cdg_id`.
    fn map_proof(&mut self, cdg_id: ClauseId, pid: u64) {
        let idx = cdg_id as usize;
        if idx >= self.proof_of_cdg.len() {
            self.proof_of_cdg.resize(idx + 1, 0);
        }
        self.proof_of_cdg[idx] = pid;
    }

    /// Maps a CDG antecedent list to proof-line hints in propagation order:
    /// conflict analysis walks the trail backward, so the list is reversed,
    /// and duplicate citations (a root fact dropped from several clauses)
    /// keep only their earliest position.
    fn hints_from(&self, ants: &[ClauseId]) -> Vec<u64> {
        let mut hints: Vec<u64> = Vec::with_capacity(ants.len());
        for &ant in ants.iter().rev() {
            let pid = self.proof_of_cdg[ant as usize];
            if !hints.contains(&pid) {
                hints.push(pid);
            }
        }
        hints
    }

    /// Emits the deletion line of an arena clause (called at mark time,
    /// while the header still resolves the CDG node).
    fn emit_proof_delete(&mut self, cref: ClauseRef) {
        if self.proof.is_none() {
            return;
        }
        let pid = self.proof_of_cdg[self.clauses.cdg_id(cref) as usize];
        if let Some(proof) = self.proof.as_mut() {
            proof.delete(pid);
        }
    }

    /// Emits the final clause of an UNSAT assumption episode: the negation
    /// of the failed assumptions, justified by the antecedents collected by
    /// [`Solver::analyze_final`].
    fn emit_proof_final_failed(&mut self) {
        if self.proof.is_some() {
            let clause: Vec<Lit> = self.failed.iter().map(|&a| !a).collect();
            let hints = self.hints_from(&self.conflict_ants);
            if let Some(proof) = self.proof.as_mut() {
                proof.finalize(&clause, &hints);
            }
        }
    }

    /// Solves without limits.
    ///
    /// # Panics
    ///
    /// Never returns [`SolveResult::Unknown`]; panics if it would (cannot
    /// happen without limits).
    pub fn solve(&mut self) -> SolveResult {
        self.solve_under(&[])
    }

    /// Solves under the given assumption literals, without resource limits.
    ///
    /// Assumptions are handled IPASIR-style, as pseudo-decisions above level
    /// 0: each is decided (in order) before any heuristic decision, and the
    /// search never backtracks past an assumption without first deriving its
    /// negation. The answer is therefore relative to the assumptions —
    /// [`SolveResult::Sat`] means the clauses **and** the assumptions hold
    /// together, [`SolveResult::Unsat`] means they cannot; in the latter
    /// case [`Solver::failed_assumptions`] names the assumption subset the
    /// final conflict used. Assumptions hold for one episode only; clauses,
    /// learned clauses, and heuristic state persist across episodes.
    ///
    /// # Panics
    ///
    /// Never returns [`SolveResult::Unknown`]; panics if it would (cannot
    /// happen without limits).
    pub fn solve_under(&mut self, assumptions: &[Lit]) -> SolveResult {
        let result = self.solve_under_limited(assumptions, &Limits::default());
        assert_ne!(
            result,
            SolveResult::Unknown,
            "unlimited solve cannot time out"
        );
        result
    }

    /// Solves under resource limits. Returns [`SolveResult::Unknown`] when a
    /// limit is exceeded; calling again (with fresh limits) resumes the
    /// search with everything learned so far.
    pub fn solve_limited(&mut self, limits: &Limits) -> SolveResult {
        self.solve_under_limited(&[], limits)
    }

    /// Solves under assumption literals **and** resource limits (see
    /// [`Solver::solve_under`] and [`Solver::solve_limited`]).
    pub fn solve_under_limited(&mut self, assumptions: &[Lit], limits: &Limits) -> SolveResult {
        self.stats.solve_calls += 1;
        if !self.ok {
            // The clause database is unsatisfiable outright; the permanent
            // core (if recorded) stays available.
            self.failed.clear();
            self.model = None;
            self.result = Some(SolveResult::Unsat);
            return SolveResult::Unsat;
        }

        // --- episode setup -------------------------------------------------
        self.backtrack(0);
        self.result = None;
        self.model = None;
        self.core = None;
        self.failed.clear();
        self.assumptions.clear();
        self.assumptions.extend_from_slice(assumptions);
        for &a in assumptions {
            self.reserve_vars(a.var().index() + 1);
        }
        self.switched = false;
        self.stats.switched_to_vsids = false;
        self.episode_decisions_base = self.stats.decisions;
        let base_conflicts = self.stats.conflicts;
        let base_decisions = self.stats.decisions;
        let base_propagations = self.stats.propagations;

        if !self.started {
            self.started = true;
            self.first_learned = self.clauses.end_offset();
            if let Some(empty) = self.empty_clause {
                self.record_conflict_clause_final(empty);
                return SolveResult::Unsat;
            }
            // Enqueue the input unit clauses at level 0.
            for i in 0..self.pending_units.len() {
                let cref = self.pending_units[i];
                let lit = self.clauses.lit(cref, 0);
                match self.lit_value(lit) {
                    LBool::Undef => self.enqueue(lit, Some(cref)),
                    LBool::True => {}
                    LBool::False => {
                        self.record_conflict_clause_final(cref);
                        return SolveResult::Unsat;
                    }
                }
            }
        } else {
            self.stats.learned_retained += self.live_learned;
        }
        // Re-seed the decision ordering: the ranking may have been replaced
        // between episodes (the per-depth varRank refresh), and the dynamic
        // configuration starts every episode in refined mode.
        let use_bmc = !matches!(self.opts.order_mode, OrderMode::Standard);
        let scores = std::mem::take(&mut self.bmc_scores);
        self.order.set_bmc_scores(&scores, use_bmc);
        self.bmc_scores = scores;
        self.order.rebuild(&self.values);

        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.record_conflict_clause_final(conflict);
                    return SolveResult::Unsat;
                }
                self.handle_conflict(conflict);
                self.after_conflict_housekeeping();
                if self.limit_exceeded(limits, base_conflicts, base_decisions, base_propagations) {
                    return SolveResult::Unknown;
                }
            } else {
                self.maybe_switch_to_vsids();
                if self.limit_exceeded(limits, base_conflicts, base_decisions, base_propagations) {
                    return SolveResult::Unknown;
                }
                let next_assumption = self.trail_lim.len();
                if next_assumption < self.assumptions.len() {
                    let a = self.assumptions[next_assumption];
                    match self.lit_value(a) {
                        // Already implied: open an empty pseudo-level so
                        // assumption index and decision level stay aligned.
                        LBool::True => self.trail_lim.push(self.trail.len()),
                        LBool::Undef => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, None);
                        }
                        LBool::False => {
                            // The clauses force the assumption's negation.
                            self.analyze_final(a);
                            return SolveResult::Unsat;
                        }
                    }
                } else {
                    match self.order.pop_best(&self.values) {
                        Some(lit) => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(lit, None);
                        }
                        None => {
                            self.finish_sat();
                            return SolveResult::Sat;
                        }
                    }
                }
            }
        }
    }

    /// The satisfying assignment, if the last solve returned SAT.
    /// `model()[v]` is the value of variable `v`.
    pub fn model(&self) -> Option<&[bool]> {
        self.model.as_deref()
    }

    /// The unsatisfiable core, if the last solve returned UNSAT and CDG
    /// recording was enabled: sorted IDs (input positions) of the original
    /// clauses responsible for the final conflict (§3.1). For an UNSAT
    /// answer under assumptions this is the core of the proof that the
    /// assumptions contradict the clauses.
    pub fn core_clauses(&self) -> Option<&[usize]> {
        self.core.as_deref()
    }

    /// The subset of the last episode's assumptions involved in the final
    /// conflict, when the episode returned [`SolveResult::Unsat`] because an
    /// assumption failed. Empty after SAT, and empty when the clauses are
    /// unsatisfiable regardless of the assumptions.
    ///
    /// The subset is the one traced by conflict analysis — small in
    /// practice, though (as in IPASIR) not guaranteed to be minimal.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed
    }

    /// The variables appearing in the unsatisfiable core (§3.2 feeds these
    /// into `update_ranking`). Sorted, no duplicates.
    pub fn core_vars(&self) -> Option<Vec<Var>> {
        let core = self.core.as_ref()?;
        let mut seen = vec![false; self.num_vars()];
        for &ci in core {
            let cref = self.original_refs[ci];
            for i in 0..self.clauses.len(cref) {
                seen[self.clauses.lit(cref, i).var().index()] = true;
            }
        }
        Some(
            seen.iter()
                .enumerate()
                .filter(|&(_, &s)| s)
                .map(|(i, _)| Var::new(i))
                .collect(),
        )
    }

    /// Search statistics so far.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Prunes the conflict dependency graph down to the nodes still
    /// reachable from live clauses, returning how many nodes were discarded.
    ///
    /// Without this, a long incremental session grows the CDG without bound:
    /// nodes are recorded per learned clause *and per level-0 implication*
    /// and never freed, because a future core extraction may reach
    /// arbitrarily far back. But every future extraction starts from the CDG
    /// IDs of clauses that are still *alive* — arena records (original and
    /// learned) plus the unit-fact nodes of root-level assignments — so
    /// anything unreachable from those roots is garbage. The BMC engine
    /// calls this at depth boundaries, where each retired activation literal
    /// has just turned a batch of learned clauses root-satisfied (deleted at
    /// the next reduction), cutting their proof chains loose.
    ///
    /// Pruning rewrites node IDs; the copies stored outside the graph (arena
    /// clause headers, per-variable unit-fact nodes) are rewritten here too.
    /// Search state, verdicts, and future cores are unaffected — IDs are
    /// opaque, and cores are reported as input positions, which leaves keep.
    ///
    /// No-op (returning 0) when CDG recording is off.
    pub fn prune_cdg(&mut self) -> u64 {
        if !self.opts.record_cdg {
            return 0;
        }
        let before = self.cdg.num_total_nodes();
        self.stats.cdg_peak_nodes = self.stats.cdg_peak_nodes.max(self.cdg.num_nodes());
        let mut roots: Vec<ClauseId> = Vec::new();
        let mut cursor = self.clauses.first();
        while let Some(cref) = cursor {
            cursor = self.clauses.next(cref);
            if !self.clauses.is_deleted(cref) {
                roots.push(self.clauses.cdg_id(cref));
            }
        }
        roots.extend(self.unit_node.iter().flatten().copied());
        let remap = self.cdg.prune_reachable(&roots);
        let pruned = (before - self.cdg.num_total_nodes()) as u64;
        if pruned > 0 {
            let mut cursor = self.clauses.first();
            while let Some(cref) = cursor {
                cursor = self.clauses.next(cref);
                if !self.clauses.is_deleted(cref) {
                    let old = self.clauses.cdg_id(cref);
                    self.clauses.set_cdg_id(cref, remap[old as usize]);
                }
            }
            for node in self.unit_node.iter_mut().flatten() {
                *node = remap[*node as usize];
            }
        }
        if self.proof.is_some() {
            // Compact the node → proof-line map by the same remap. Proof
            // line ids are never renumbered — only the CDG-side index moves.
            let mut compacted = vec![0u64; self.cdg.num_total_nodes()];
            for (old, &pid) in self.proof_of_cdg.iter().enumerate() {
                let new = remap[old];
                if new != ClauseId::MAX {
                    compacted[new as usize] = pid;
                }
            }
            self.proof_of_cdg = compacted;
        }
        self.stats.cdg_pruned_nodes += pruned;
        self.stats.cdg_nodes = self.cdg.num_nodes();
        self.stats.cdg_edges = self.cdg.num_edges();
        #[cfg(feature = "debug-invariants")]
        self.audit()
            .expect("solver invariants violated after CDG prune");
        pruned
    }

    /// The result of the last solve call, if any.
    pub fn result(&self) -> Option<SolveResult> {
        self.result
    }

    // ----- internals -------------------------------------------------------

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    #[inline]
    fn lit_value(&self, lit: Lit) -> LBool {
        self.values[lit.var().index()].xor(lit.is_negative())
    }

    /// Registers the watches of a `len`-literal clause whose current watch
    /// pair is `l0`/`l1`: binary clauses go to the inline tier, longer
    /// clauses to the blocker tier.
    fn watch_clause(&mut self, cref: ClauseRef, len: usize, l0: Lit, l1: Lit) {
        debug_assert!(len >= 2);
        if len == 2 {
            self.watches[l0.code()].bins.push(BinWatch {
                clause: cref,
                implied: l1,
            });
            self.watches[l1.code()].bins.push(BinWatch {
                clause: cref,
                implied: l0,
            });
        } else {
            self.watches[l0.code()].longs.push(LongWatch {
                clause: cref,
                blocker: l1,
            });
            self.watches[l1.code()].longs.push(LongWatch {
                clause: cref,
                blocker: l0,
            });
        }
    }

    /// Assigns `lit` true at the current level with the given reason clause.
    ///
    /// At level 0 this also materializes the literal's unit node in the CDG
    /// so later proofs can cite the fact (see module docs of `cdg`).
    fn enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        let v = lit.var().index();
        debug_assert!(self.values[v].is_undef());
        self.values[v] = LBool::from(lit.is_positive());
        self.levels[v] = self.decision_level();
        self.reasons[v] = reason;
        self.trail.push(lit);
        if reason.is_some() {
            self.stats.propagations += 1;
        }
        if self.opts.record_cdg && self.decision_level() == 0 {
            let reason = reason.expect("level-0 assignments are always implied");
            self.unit_ants.clear();
            self.unit_ants.push(self.clauses.cdg_id(reason));
            for i in 0..self.clauses.len(reason) {
                let other = self.clauses.lit(reason, i);
                if other.var() != lit.var() {
                    let node = self.unit_node[other.var().index()]
                        .expect("supporting level-0 fact was recorded earlier");
                    self.unit_ants.push(node);
                }
            }
            let node = self.cdg.record_learned(&self.unit_ants);
            self.unit_node[v] = Some(node);
            if self.proof.is_some() {
                let hints = self.hints_from(&self.unit_ants);
                let pid = self.fresh_proof_id();
                self.map_proof(node, pid);
                self.proof
                    .as_mut()
                    .expect("checked above")
                    .derived(pid, &[lit], &hints);
            }
        }
    }

    /// Watched-literal BCP. Returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;
            let mut conflict = None;

            // Binary tier: unit/conflict decided from the watcher alone.
            let bins = std::mem::take(&mut self.watches[false_lit.code()].bins);
            for w in &bins {
                match self.lit_value(w.implied) {
                    LBool::True => {}
                    LBool::Undef => self.enqueue(w.implied, Some(w.clause)),
                    LBool::False => {
                        conflict = Some(w.clause);
                        break;
                    }
                }
            }
            self.watches[false_lit.code()].bins = bins;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }

            // Long tier: blocker watches over the arena.
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()].longs);
            let mut i = 0;
            'watches: while i < ws.len() {
                let w = ws[i];
                // A true blocker satisfies the clause.
                if self.lit_value(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let cref = w.clause;
                // Put the false literal in slot 1.
                if self.clauses.lit(cref, 0) == false_lit {
                    self.clauses.swap_lits(cref, 0, 1);
                }
                debug_assert_eq!(self.clauses.lit(cref, 1), false_lit);
                let first = self.clauses.lit(cref, 0);
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                for k in 2..self.clauses.len(cref) {
                    let candidate = self.clauses.lit(cref, k);
                    if self.lit_value(candidate) != LBool::False {
                        self.clauses.swap_lits(cref, 1, k);
                        self.watches[candidate.code()].longs.push(LongWatch {
                            clause: cref,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watches;
                    }
                }
                // No replacement: unit or conflict on `first`.
                if self.lit_value(first) == LBool::False {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    break;
                }
                self.enqueue(first, Some(cref));
                i += 1;
            }
            self.watches[false_lit.code()].longs = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis, clause learning, and backjumping.
    fn handle_conflict(&mut self, conflict: ClauseRef) {
        let current_level = self.decision_level();
        self.conflict_ants.clear();
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // slot 0 = asserting literal
        let mut path_count = 0usize;
        let mut index = self.trail.len();
        let mut confl = conflict;
        let mut resolve_lit: Option<Lit> = None;

        loop {
            if self.opts.record_cdg {
                self.conflict_ants.push(self.clauses.cdg_id(confl));
            }
            self.clauses.bump_activity(confl);
            // The clause body is present: reasons of assigned literals and the
            // conflicting clause are never deleted (locked or just used).
            for j in 0..self.clauses.len(confl) {
                let q = self.clauses.lit(confl, j);
                if Some(q) == resolve_lit {
                    continue;
                }
                let v = q.var().index();
                if self.seen[v] {
                    continue;
                }
                if self.levels[v] == 0 {
                    // Dropping a root-level literal: cite its unit fact so the
                    // CDG still derives the learned clause by pure resolution.
                    if self.opts.record_cdg {
                        let node =
                            self.unit_node[v].expect("root-level assignment has a unit node");
                        self.conflict_ants.push(node);
                    }
                    continue;
                }
                self.seen[v] = true;
                if self.levels[v] == current_level {
                    path_count += 1;
                } else {
                    learnt.push(q);
                }
            }
            // Next seen literal on the trail (at the current level).
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let l = self.trail[index];
            self.seen[l.var().index()] = false;
            path_count -= 1;
            if path_count == 0 {
                learnt[0] = !l;
                break;
            }
            confl = self.reasons[l.var().index()]
                .expect("implied literal at the conflict level has a reason");
            resolve_lit = Some(l);
        }
        for lit in &learnt[1..] {
            self.seen[lit.var().index()] = false;
        }

        // Backjump level: highest level among the non-asserting literals.
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.levels[learnt[i].var().index()] > self.levels[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.levels[learnt[1].var().index()]
        };
        self.backtrack(backtrack_level);

        // Store the learned clause, watch it, propagate its asserting literal.
        self.stats.learned += 1;
        self.stats.learned_literals += learnt.len() as u64;
        self.live_learned += 1;
        self.order.on_learned_clause(&learnt);
        let cdg_id = if self.opts.record_cdg {
            let id = self.cdg.record_learned(&self.conflict_ants);
            self.stats.cdg_nodes = self.cdg.num_nodes();
            self.stats.cdg_edges = self.cdg.num_edges();
            self.stats.cdg_peak_nodes = self.stats.cdg_peak_nodes.max(self.stats.cdg_nodes);
            id
        } else {
            ClauseId::MAX
        };
        if self.proof.is_some() {
            let hints = self.hints_from(&self.conflict_ants);
            let pid = self.fresh_proof_id();
            self.map_proof(cdg_id, pid);
            self.proof
                .as_mut()
                .expect("checked above")
                .derived(pid, &learnt, &hints);
        }
        let cref = self.clauses.alloc(&learnt, true, cdg_id);
        self.note_arena_peak();
        self.clauses.set_activity(cref, 1);
        if learnt.len() >= 2 {
            self.watch_clause(cref, learnt.len(), learnt[0], learnt[1]);
        }
        let asserting = learnt[0];
        self.enqueue(asserting, Some(cref));
    }

    /// Undoes all assignments above `level`.
    fn backtrack(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let new_len = self.trail_lim[level as usize];
        for i in (new_len..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.values[v.index()] = LBool::Undef;
            self.reasons[v.index()] = None;
            self.order.reinsert_var(v);
        }
        self.trail.truncate(new_len);
        self.trail_lim.truncate(level as usize);
        self.qhead = new_len;
    }

    /// Periodic work after each conflict: score halving, restarts, clause
    /// database reduction.
    fn after_conflict_housekeeping(&mut self) {
        if self.stats.conflicts - self.conflicts_at_last_halve >= self.opts.halve_interval {
            self.conflicts_at_last_halve = self.stats.conflicts;
            self.order.halve_scores();
            self.order.rebuild(&self.values);
            self.stats.score_halvings += 1;
        }
        if self.opts.luby_unit > 0 {
            let budget = luby(self.restart_number) * self.opts.luby_unit;
            if self.stats.conflicts - self.conflicts_at_restart >= budget {
                self.restart_number += 1;
                self.conflicts_at_restart = self.stats.conflicts;
                self.stats.restarts += 1;
                self.backtrack(0);
            }
        }
        if self.opts.reduce_db && self.live_learned >= self.reduce_threshold {
            self.reduce_learned_db();
            self.reduce_threshold += self.opts.reduce_inc;
        }
    }

    /// A learned clause satisfied by a root-level fact is satisfied forever
    /// (root assignments are never undone). In an incremental session this
    /// is how each depth's garbage is identified: once the engine retires an
    /// activation literal with a `¬a_k` unit, every clause that learned
    /// `…∨ ¬a_k` from the depth-`k` conflicts matches this test.
    fn root_satisfied(&self, cref: ClauseRef) -> bool {
        (0..self.clauses.len(cref)).any(|i| {
            let lit = self.clauses.lit(cref, i);
            self.lit_value(lit) == LBool::True && self.levels[lit.var().index()] == 0
        })
    }

    /// Deletes learned clauses that can never matter again (satisfied at the
    /// root — see [`Solver::root_satisfied`]) plus the less relevant half of
    /// the remaining learned clauses (by activity, then recency), and
    /// compacts the arena, relocating the survivors so the region stays
    /// contiguous — no tombstones for BCP to skip. Locked clauses (reasons
    /// of current assignments) and short clauses are kept. Bodies are freed;
    /// CDG pseudo-IDs survive in the headers. Original clauses added
    /// mid-session live interleaved with the learned records; they are never
    /// deleted, but they may be relocated, so `original_refs` is patched
    /// alongside `reasons`.
    ///
    /// Watch lists are repaired **incrementally**: a deleted clause is
    /// detached from the two lists watching it (while its body is still
    /// readable), and a relocated survivor has exactly its two entries
    /// rewritten to the new offset. Every other watch list — in particular
    /// the binary lists of the original clauses, which never move — survives
    /// the compaction untouched, instead of the previous whole-solver
    /// rebuild. `SolverStats::watch_entries_repaired` counts the rewrites.
    fn reduce_learned_db(&mut self) {
        // (activity, cref) over unlocked long learned clauses.
        let mut candidates: Vec<(u32, ClauseRef)> = Vec::new();
        let mut doomed: Vec<ClauseRef> = Vec::new();
        let mut cursor = if self.first_learned < self.clauses.end_offset() {
            Some(ClauseRef::at(self.first_learned))
        } else {
            None
        };
        while let Some(cref) = cursor {
            cursor = self.clauses.next(cref);
            if !self.clauses.is_learned(cref) || self.is_locked(cref) {
                continue;
            }
            if self.root_satisfied(cref) {
                self.emit_proof_delete(cref);
                self.clauses.mark_deleted(cref);
                doomed.push(cref);
                self.live_learned -= 1;
                self.stats.deleted += 1;
                self.stats.root_satisfied_deleted += 1;
                continue;
            }
            if self.clauses.len(cref) <= 2 {
                continue;
            }
            candidates.push((self.clauses.activity(cref), cref));
        }
        candidates.sort_unstable();
        let to_delete = candidates.len() / 2;
        for &(_, cref) in candidates.iter().take(to_delete) {
            self.emit_proof_delete(cref);
            self.clauses.mark_deleted(cref);
            doomed.push(cref);
            self.live_learned -= 1;
            self.stats.deleted += 1;
        }
        // Detach the deleted clauses from their watch lists before
        // compaction frees the bodies (the watch pair is slots 0/1 — an
        // invariant BCP maintains).
        for &cref in &doomed {
            self.detach_watches(cref);
        }

        // Compact the learned region and patch the relocated references.
        let remap = self.clauses.compact_learned(self.first_learned);
        self.stats.compactions += 1;
        if !remap.is_empty() {
            let first_learned = self.first_learned;
            let patch = |r: &mut ClauseRef| {
                if r.offset() >= first_learned {
                    if let Ok(i) = remap.binary_search_by_key(&r.offset(), |&(old, _)| old) {
                        *r = ClauseRef::at(remap[i].1);
                    }
                }
            };
            for reason in self.reasons.iter_mut().flatten() {
                patch(reason);
            }
            for original in &mut self.original_refs {
                patch(original);
            }
            // Rewrite the two watch entries of each relocated clause.
            // Ascending old-offset order makes the scan unambiguous: every
            // new offset is strictly below its own old offset, and hence
            // below all old offsets still waiting to be patched.
            for &(old, new) in &remap {
                let cref = ClauseRef::at(new);
                let len = self.clauses.len(cref);
                if len < 2 {
                    continue;
                }
                let (l0, l1) = (self.clauses.lit(cref, 0), self.clauses.lit(cref, 1));
                self.repair_watch(l0, len, old, new);
                self.repair_watch(l1, len, old, new);
            }
        }
        // Halve activities so future reductions favour recent relevance.
        self.clauses.halve_learned_activities(self.first_learned);
        #[cfg(feature = "debug-invariants")]
        self.audit()
            .expect("solver invariants violated after compaction");
    }

    /// Removes the two watch entries of `cref` (about to be deleted). Its
    /// watched literals are slots 0 and 1 by the BCP invariant; unit and
    /// empty clauses are never watched.
    fn detach_watches(&mut self, cref: ClauseRef) {
        let len = self.clauses.len(cref);
        if len < 2 {
            return;
        }
        for slot in 0..2 {
            let lit = self.clauses.lit(cref, slot);
            let wl = &mut self.watches[lit.code()];
            if len == 2 {
                let i = wl
                    .bins
                    .iter()
                    .position(|w| w.clause == cref)
                    .expect("deleted binary clause is watched on slots 0/1");
                wl.bins.swap_remove(i);
            } else {
                let i = wl
                    .longs
                    .iter()
                    .position(|w| w.clause == cref)
                    .expect("deleted long clause is watched on slots 0/1");
                wl.longs.swap_remove(i);
            }
        }
    }

    /// Rewrites the watch entry of a relocated clause in `lit`'s list from
    /// arena offset `old` to `new`.
    fn repair_watch(&mut self, lit: Lit, len: usize, old: u32, new: u32) {
        let old_ref = ClauseRef::at(old);
        let wl = &mut self.watches[lit.code()];
        if len == 2 {
            let w = wl
                .bins
                .iter_mut()
                .find(|w| w.clause == old_ref)
                .expect("relocated binary clause is watched on slots 0/1");
            w.clause = ClauseRef::at(new);
        } else {
            let w = wl
                .longs
                .iter_mut()
                .find(|w| w.clause == old_ref)
                .expect("relocated long clause is watched on slots 0/1");
            w.clause = ClauseRef::at(new);
        }
        self.stats.watch_entries_repaired += 1;
    }

    /// A clause is locked while it is the reason of its asserting literal.
    fn is_locked(&self, cref: ClauseRef) -> bool {
        if self.clauses.len(cref) == 0 {
            return false;
        }
        let first = self.clauses.lit(cref, 0);
        self.lit_value(first) == LBool::True && self.reasons[first.var().index()] == Some(cref)
    }

    /// Dynamic configuration: fall back to pure VSIDS once the decision count
    /// betrays an inaccurate estimation (§3.3).
    fn maybe_switch_to_vsids(&mut self) {
        if self.switched || !self.order.uses_bmc() {
            return;
        }
        if let OrderMode::Dynamic { divisor } = self.opts.order_mode {
            let episode_decisions = self.stats.decisions - self.episode_decisions_base;
            if episode_decisions > self.num_original_lits / u64::from(divisor.max(1)) {
                self.switched = true;
                self.stats.switched_to_vsids = true;
                self.order.disable_bmc();
                self.order.rebuild(&self.values);
            }
        }
    }

    fn limit_exceeded(
        &self,
        limits: &Limits,
        base_conflicts: u64,
        base_decisions: u64,
        base_propagations: u64,
    ) -> bool {
        if let Some(n) = limits.max_conflicts {
            if self.stats.conflicts - base_conflicts >= n {
                return true;
            }
        }
        if let Some(n) = limits.max_decisions {
            if self.stats.decisions - base_decisions >= n {
                return true;
            }
        }
        if let Some(n) = limits.max_propagations {
            if self.stats.propagations - base_propagations >= n {
                return true;
            }
        }
        if let Some(deadline) = limits.deadline {
            // Coarse check: only every 64 conflicts to keep `Instant::now`
            // off the hot path.
            if (self.stats.conflicts - base_conflicts).is_multiple_of(64)
                && Instant::now() >= deadline
            {
                return true;
            }
        }
        if let Some(cancel) = &limits.cancel {
            if cancel.is_cancelled() {
                return true;
            }
        }
        false
    }

    fn finish_sat(&mut self) {
        // Variables no clause mentions (an incremental session reserves the
        // whole future variable range up front) are never decided; they
        // default to false in the model.
        let model = self
            .values
            .iter()
            .map(|v| v.to_bool().unwrap_or(false))
            .collect();
        self.model = Some(model);
        self.result = Some(SolveResult::Sat);
    }

    /// The episode's failing assumption `a` is falsified by the current
    /// trail: walks the reason chain of `¬a` back through the assumption
    /// levels, collecting (a) the assumption pseudo-decisions the refutation
    /// rests on — the *failed assumptions* — and (b) the CDG antecedents of
    /// every reason clause crossed, from which the per-episode unsatisfiable
    /// core is extracted. This is the assumption-based analogue of the final
    /// empty-clause conflict: nothing is recorded permanently, because the
    /// clause database itself stays satisfiable.
    fn analyze_final(&mut self, failing: Lit) {
        self.stats.assumption_conflicts += 1;
        self.failed.clear();
        self.failed.push(failing);
        self.conflict_ants.clear();
        let v0 = failing.var().index();
        if self.levels[v0] == 0 {
            // The clauses alone already imply ¬a at the root.
            if self.opts.record_cdg {
                let node = self.unit_node[v0].expect("root-level assignment has a unit node");
                self.conflict_ants.push(node);
                self.core = Some(self.cdg.core_from(&self.conflict_ants));
            }
            self.emit_proof_final_failed();
            self.result = Some(SolveResult::Unsat);
            return;
        }
        self.seen[v0] = true;
        let bottom = self.trail_lim[0];
        for i in (bottom..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var().index();
            if !self.seen[v] {
                continue;
            }
            self.seen[v] = false;
            match self.reasons[v] {
                None => {
                    // A pseudo-decision: only assumptions are decided while
                    // assumption levels are still being established.
                    self.failed.push(lit);
                }
                Some(reason) => {
                    if self.opts.record_cdg {
                        self.conflict_ants.push(self.clauses.cdg_id(reason));
                    }
                    for j in 0..self.clauses.len(reason) {
                        let q = self.clauses.lit(reason, j);
                        let qv = q.var().index();
                        if qv == v {
                            continue;
                        }
                        if self.levels[qv] == 0 {
                            if self.opts.record_cdg {
                                let node = self.unit_node[qv]
                                    .expect("root-level assignment has a unit node");
                                self.conflict_ants.push(node);
                            }
                        } else {
                            self.seen[qv] = true;
                        }
                    }
                }
            }
        }
        if self.opts.record_cdg {
            self.core = Some(self.cdg.core_from(&self.conflict_ants));
        }
        self.emit_proof_final_failed();
        self.result = Some(SolveResult::Unsat);
    }

    /// Records the final (empty-clause) conflict: the conflicting clause plus
    /// the root-level unit facts of each of its literals, then extracts the
    /// core. The clause database itself is unsatisfiable, so the solver is
    /// finished for good: every later episode answers UNSAT immediately.
    fn record_conflict_clause_final(&mut self, conflict: ClauseRef) {
        if self.opts.record_cdg {
            let mut ants = vec![self.clauses.cdg_id(conflict)];
            for i in 0..self.clauses.len(conflict) {
                let lit = self.clauses.lit(conflict, i);
                if let Some(node) = self.unit_node[lit.var().index()] {
                    ants.push(node);
                }
            }
            self.finish_unsat(ants);
        } else {
            self.finish_unsat(Vec::new());
        }
    }

    fn finish_unsat(&mut self, final_antecedents: Vec<ClauseId>) {
        self.ok = false;
        if self.proof.is_some() {
            let hints = self.hints_from(&final_antecedents);
            if let Some(proof) = self.proof.as_mut() {
                proof.finalize(&[], &hints);
            }
        }
        // A mid-episode (or mid-session `add_clause`) refutation invalidates
        // any previously published episode results.
        self.model = None;
        self.failed.clear();
        if self.opts.record_cdg {
            self.cdg.record_final(final_antecedents);
            self.core = self.cdg.extract_core();
            self.stats.cdg_nodes = self.cdg.num_nodes();
            self.stats.cdg_edges = self.cdg.num_edges();
            self.stats.cdg_peak_nodes = self.stats.cdg_peak_nodes.max(self.stats.cdg_nodes);
        }
        self.result = Some(SolveResult::Unsat);
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, …
/// (`x` is the 0-based restart number).
fn luby(x: u64) -> u64 {
    // Find the finite subsequence that contains index x and its size.
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut x = x;
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbmc_cnf::parse_dimacs;

    fn lit(n: i64) -> Lit {
        Lit::from_dimacs(n)
    }

    fn solve_text(text: &str) -> (SolveResult, Solver) {
        let f = parse_dimacs(text).unwrap();
        let mut s = Solver::from_formula(&f);
        let r = s.solve();
        (r, s)
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn empty_formula_is_sat() {
        let (r, s) = solve_text("p cnf 0 0\n");
        assert_eq!(r, SolveResult::Sat);
        assert_eq!(s.model().unwrap().len(), 0);
    }

    #[test]
    fn single_unit_clause() {
        let (r, s) = solve_text("p cnf 1 1\n-1 0\n");
        assert_eq!(r, SolveResult::Sat);
        assert_eq!(s.model().unwrap(), &[false]);
    }

    #[test]
    fn contradictory_units_are_unsat_with_exact_core() {
        let (r, s) = solve_text("p cnf 2 3\n1 0\n-1 0\n2 0\n");
        assert_eq!(r, SolveResult::Unsat);
        // Clause 2 (x2) is irrelevant: the core is exactly the two units.
        assert_eq!(s.core_clauses().unwrap(), &[0, 1]);
        assert_eq!(s.core_vars().unwrap(), vec![Var::new(0)]);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let (r, s) = solve_text("p cnf 1 2\n1 0\n0\n");
        assert_eq!(r, SolveResult::Unsat);
        assert_eq!(s.core_clauses().unwrap(), &[1]);
    }

    #[test]
    fn simple_propagation_chain_unsat() {
        // x1, x1->x2, x2->x3, ¬x3: UNSAT involving all four clauses.
        let (r, s) = solve_text("p cnf 3 4\n1 0\n-1 2 0\n-2 3 0\n-3 0\n");
        assert_eq!(r, SolveResult::Unsat);
        assert_eq!(s.core_clauses().unwrap(), &[0, 1, 2, 3]);
    }

    #[test]
    fn sat_model_satisfies_formula() {
        let text = "p cnf 4 5\n1 2 0\n-1 3 0\n-2 -3 0\n3 4 0\n-4 1 0\n";
        let f = parse_dimacs(text).unwrap();
        let (r, s) = solve_text(text);
        assert_eq!(r, SolveResult::Sat);
        assert_eq!(f.evaluate(s.model().unwrap()), Some(true));
    }

    #[test]
    fn pigeonhole_two_pigeons_one_hole() {
        // p1 in hole, p2 in hole, not both: UNSAT.
        let (r, s) = solve_text("p cnf 2 3\n1 0\n2 0\n-1 -2 0\n");
        assert_eq!(r, SolveResult::Unsat);
        assert_eq!(s.core_clauses().unwrap(), &[0, 1, 2]);
    }

    #[test]
    fn unsat_needs_search() {
        // All eight clauses over three variables: classically UNSAT and
        // requires actual conflict-driven search.
        let text = "p cnf 3 8\n1 2 3 0\n1 2 -3 0\n1 -2 3 0\n1 -2 -3 0\n\
                    -1 2 3 0\n-1 2 -3 0\n-1 -2 3 0\n-1 -2 -3 0\n";
        let (r, s) = solve_text(text);
        assert_eq!(r, SolveResult::Unsat);
        let core = s.core_clauses().unwrap();
        assert!(!core.is_empty());
        // The core must itself be UNSAT.
        let f = parse_dimacs(text).unwrap();
        let sub = f.subformula(core);
        let mut s2 = Solver::from_formula(&sub);
        assert_eq!(s2.solve(), SolveResult::Unsat);
    }

    #[test]
    fn decision_limit_reports_unknown_and_resumes() {
        // A formula that needs at least a couple of decisions.
        let text = "p cnf 6 4\n1 2 0\n3 4 0\n5 6 0\n-1 -3 0\n";
        let f = parse_dimacs(text).unwrap();
        let mut s = Solver::from_formula(&f);
        let r = s.solve_limited(&Limits::new().with_max_decisions(1));
        assert_eq!(r, SolveResult::Unknown);
        // Resuming without limits finishes the job.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(f.evaluate(s.model().unwrap()), Some(true));
    }

    #[test]
    fn tautology_never_in_core() {
        let (r, s) = solve_text("p cnf 2 4\n1 -1 0\n2 0\n-2 0\n1 0\n");
        assert_eq!(r, SolveResult::Unsat);
        assert_eq!(s.core_clauses().unwrap(), &[1, 2]);
    }

    #[test]
    fn duplicate_literals_are_handled() {
        let (r, s) = solve_text("p cnf 1 2\n1 1 0\n-1 -1 0\n");
        assert_eq!(r, SolveResult::Unsat);
        assert_eq!(s.core_clauses().unwrap(), &[0, 1]);
    }

    #[test]
    fn static_order_decides_ranked_vars_first() {
        // SAT formula; ranked variable should be the first decision.
        let f = parse_dimacs("p cnf 4 2\n1 2 0\n3 4 0\n").unwrap();
        let mut s = Solver::from_formula_with(
            &f,
            SolverOptions {
                order_mode: OrderMode::Static,
                ..SolverOptions::default()
            },
        );
        s.set_var_ranking(&[0, 0, 0, 7]); // rank x4 highest
        assert_eq!(s.solve(), SolveResult::Sat);
        let model = s.model().unwrap();
        // x4 was decided first; its positive literal was chosen, so true.
        assert!(model[3]);
    }

    #[test]
    fn cached_result_is_returned() {
        let (r, mut s) = solve_text("p cnf 1 1\n1 0\n");
        assert_eq!(r, SolveResult::Sat);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.result(), Some(SolveResult::Sat));
    }

    #[test]
    fn clauses_can_be_added_between_episodes() {
        let (r, mut s) = solve_text("p cnf 2 1\n1 2 0\n");
        assert_eq!(r, SolveResult::Sat);
        s.add_clause(&[lit(-1)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let model = s.model().unwrap();
        assert!(!model[0] && model[1]);
        s.add_clause(&[lit(-2)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        // All three clauses participate in the refutation.
        assert_eq!(s.core_clauses().unwrap(), &[0, 1, 2]);
        // The database itself is unsatisfiable: later episodes answer
        // immediately, whatever the assumptions.
        assert_eq!(s.solve_under(&[lit(1)]), SolveResult::Unsat);
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn refuting_add_clause_clears_stale_model() {
        let (r, mut s) = solve_text("p cnf 1 1\n1 0\n");
        assert_eq!(r, SolveResult::Sat);
        assert!(s.model().is_some());
        // The contradicting unit refutes the database at add time; the
        // previous episode's model must not survive next to an Unsat result.
        s.add_clause(&[lit(-1)]);
        assert_eq!(s.result(), Some(SolveResult::Unsat));
        assert!(s.model().is_none());
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn assumptions_restrict_a_single_episode() {
        let f = parse_dimacs("p cnf 2 1\n1 2 0\n").unwrap();
        let mut s = Solver::from_formula(&f);
        assert_eq!(s.solve_under(&[lit(-1), lit(-2)]), SolveResult::Unsat);
        // Both assumptions are needed to contradict (x1 ∨ x2).
        let mut failed = s.failed_assumptions().to_vec();
        failed.sort_unstable();
        assert_eq!(failed, vec![lit(-1), lit(-2)]);
        assert_eq!(s.core_clauses().unwrap(), &[0]);
        // The same solver, under the opposite assumption: SAT, with the
        // assumption reflected in the model.
        assert_eq!(s.solve_under(&[lit(-1)]), SolveResult::Sat);
        let model = s.model().unwrap();
        assert!(!model[0] && model[1]);
        assert!(s.failed_assumptions().is_empty());
        // And with no assumptions at all the formula stays SAT.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn failed_assumptions_exclude_irrelevant_ones() {
        // x3 is constrained only against x4; assuming it is harmless.
        let f = parse_dimacs("p cnf 4 2\n-1 -2 0\n-3 4 0\n").unwrap();
        let mut s = Solver::from_formula(&f);
        assert_eq!(s.solve_under(&[lit(3), lit(1), lit(2)]), SolveResult::Unsat);
        let mut failed = s.failed_assumptions().to_vec();
        failed.sort_unstable();
        assert_eq!(failed, vec![lit(1), lit(2)], "x3 must not be blamed");
        // The core names only the clause linking the failed assumptions.
        assert_eq!(s.core_clauses().unwrap(), &[0]);
    }

    #[test]
    fn root_implied_assumption_failure_has_unit_core() {
        // Units force ¬x2 outright; assuming x2 fails with core {x1, x1→¬x2}.
        let f = parse_dimacs("p cnf 2 2\n1 0\n-1 -2 0\n").unwrap();
        let mut s = Solver::from_formula(&f);
        assert_eq!(s.solve_under(&[lit(2)]), SolveResult::Unsat);
        assert_eq!(s.failed_assumptions(), &[lit(2)]);
        assert_eq!(s.core_clauses().unwrap(), &[0, 1]);
    }

    #[test]
    fn contradictory_assumptions_fail_against_each_other() {
        let f = parse_dimacs("p cnf 1 0\n").unwrap();
        let mut s = Solver::from_formula(&f);
        assert_eq!(s.solve_under(&[lit(1), lit(-1)]), SolveResult::Unsat);
        let mut failed = s.failed_assumptions().to_vec();
        failed.sort_unstable();
        assert_eq!(failed, vec![lit(1), lit(-1)]);
        // No clause is involved: the assumptions refute themselves.
        assert_eq!(s.core_clauses().unwrap(), &[] as &[usize]);
    }

    #[test]
    fn ranking_can_be_reseeded_between_episodes() {
        let f = parse_dimacs("p cnf 4 2\n1 2 0\n3 4 0\n").unwrap();
        let mut s = Solver::from_formula_with(
            &f,
            SolverOptions {
                order_mode: OrderMode::Static,
                ..SolverOptions::default()
            },
        );
        s.set_var_ranking(&[0, 0, 0, 7]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model().unwrap()[3], "x4 decided first");
        // Re-rank on the live solver: the next episode decides x3 first.
        s.set_var_ranking(&[0, 0, 9, 0]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model().unwrap()[2], "x3 decided first after re-ranking");
    }

    #[test]
    fn activation_literal_pattern_drives_session() {
        // The BMC engine's scheme in miniature: a_k → bad_k, assume a_k,
        // then retire it with ¬a_k. Here x3/x4 are two "bad" flags with
        // x1-chained consequences, x5/x6 the activation literals.
        let f = parse_dimacs("p cnf 6 3\n1 0\n-5 -1 0\n-6 2 0\n").unwrap();
        let mut s = Solver::from_formula(&f);
        // Depth 0: a_0 = x5 forces ¬x1, contradicting the unit x1.
        assert_eq!(s.solve_under(&[lit(5)]), SolveResult::Unsat);
        assert_eq!(s.failed_assumptions(), &[lit(5)]);
        assert_eq!(s.core_clauses().unwrap(), &[0, 1]);
        // Retire a_0 and move to depth 1: a_1 = x6 is satisfiable.
        s.add_clause(&[lit(-5)]);
        assert_eq!(s.solve_under(&[lit(6)]), SolveResult::Sat);
        let model = s.model().unwrap();
        assert!(model[5] && model[1] && !model[4]);
        let stats = s.stats();
        assert_eq!(stats.assumption_conflicts, 1);
        assert!(stats.solve_calls >= 2);
    }

    #[test]
    fn prune_cdg_keeps_future_cores_exact() {
        // The activation-literal session shape, pruned at each "depth
        // boundary": cores extracted after pruning must match the unpruned
        // solver's exactly.
        let f = parse_dimacs("p cnf 6 3\n1 0\n-5 -1 0\n-6 2 0\n").unwrap();
        let mut pruned = Solver::from_formula(&f);
        let mut plain = Solver::from_formula(&f);
        for s in [&mut pruned, &mut plain] {
            assert_eq!(s.solve_under(&[lit(5)]), SolveResult::Unsat);
        }
        pruned.prune_cdg();
        for s in [&mut pruned, &mut plain] {
            s.add_clause(&[lit(-5)]);
            assert_eq!(s.solve_under(&[lit(6), lit(-2)]), SolveResult::Unsat);
        }
        assert_eq!(pruned.core_clauses(), plain.core_clauses());
        assert_eq!(pruned.core_clauses().unwrap(), &[2]);
        pruned.prune_cdg();
        // A final outright refutation still extracts its core post-prune.
        for s in [&mut pruned, &mut plain] {
            s.add_clause(&[lit(-2)]);
            s.add_clause(&[lit(2)]);
            assert_eq!(s.solve(), SolveResult::Unsat);
        }
        assert_eq!(pruned.core_clauses(), plain.core_clauses());
    }

    #[test]
    fn compaction_repairs_only_relocated_watches() {
        // A formula needing real search, with an aggressive reduction
        // threshold: compactions relocate learned clauses mid-search, and
        // the incremental repair must keep BCP sound to the (known) verdict.
        let text = "p cnf 3 8\n1 2 3 0\n1 2 -3 0\n1 -2 3 0\n1 -2 -3 0\n\
                    -1 2 3 0\n-1 2 -3 0\n-1 -2 3 0\n-1 -2 -3 0\n";
        let f = parse_dimacs(text).unwrap();
        let mut s = Solver::from_formula_with(
            &f,
            SolverOptions {
                reduce_base: 2,
                reduce_inc: 0,
                luby_unit: 1,
                ..SolverOptions::default()
            },
        );
        assert_eq!(s.solve(), SolveResult::Unsat);
        let stats = s.stats();
        assert!(stats.compactions > 0, "reduction must have run");
        assert!(
            stats.deleted > 0,
            "reduction must have deleted learned clauses"
        );
        // The core is still exact through all the relocation.
        let core = s.core_clauses().unwrap();
        let mut s2 = Solver::from_formula(&f.subformula(core));
        assert_eq!(s2.solve(), SolveResult::Unsat);
    }

    #[test]
    fn prune_cdg_is_noop_without_recording() {
        let f = parse_dimacs("p cnf 2 2\n1 2 0\n-1 0\n").unwrap();
        let mut s = Solver::from_formula_with(
            &f,
            SolverOptions {
                record_cdg: false,
                ..SolverOptions::default()
            },
        );
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.prune_cdg(), 0);
        assert_eq!(s.stats().cdg_pruned_nodes, 0);
    }

    #[test]
    fn stats_count_decisions_and_propagations() {
        let (_, s) = solve_text("p cnf 3 3\n1 2 0\n-1 3 0\n-3 -2 0\n");
        let stats = s.stats();
        assert!(stats.decisions >= 1);
        // At least the implied assignments were counted.
        assert!(stats.decisions + stats.propagations >= 3);
    }
}
