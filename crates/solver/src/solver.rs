//! The CDCL solver: DLL search with watched-literal BCP, first-UIP learning,
//! restarts, clause-database reduction, and CDG-based core extraction.

use std::fmt;
use std::time::Instant;

use rbmc_cnf::{Clause, CnfFormula, Lit, Var};

use crate::arena::{ClauseArena, ClauseRef};
use crate::cdg::{Cdg, ClauseId};
use crate::order::LitOrder;
use crate::{LBool, Limits, OrderMode, SolverStats};

/// Outcome of a solve call.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SolveResult {
    /// A satisfying assignment was found (see [`Solver::model`]).
    Sat,
    /// The formula was proven unsatisfiable (see [`Solver::core_clauses`]).
    Unsat,
    /// A resource limit was hit before an answer was found; the search can be
    /// resumed by calling [`Solver::solve_limited`] again.
    Unknown,
}

/// Configuration of the solver.
///
/// The defaults replicate the paper's Chaff setup: literal-based VSIDS with
/// periodic halving, restarts, learned-clause deletion, and CDG recording on
/// (the refinement needs cores; disable it to measure the §3.1 overhead).
///
/// # Examples
///
/// ```
/// use rbmc_solver::{OrderMode, SolverOptions};
///
/// let opts = SolverOptions {
///     order_mode: OrderMode::Dynamic { divisor: 64 },
///     ..SolverOptions::default()
/// };
/// assert!(opts.record_cdg);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolverOptions {
    /// How decisions combine `bmc_score` and `cha_score` (§3.3).
    pub order_mode: OrderMode,
    /// Record the simplified conflict dependency graph so an unsatisfiable
    /// core can be extracted (§3.1). Costs a few percent of runtime.
    pub record_cdg: bool,
    /// Conflicts between `cha_score` halvings (Chaff updated periodically;
    /// 256 is the conventional period).
    pub halve_interval: u64,
    /// Luby restart unit in conflicts; `0` disables restarts.
    pub luby_unit: u64,
    /// Enable periodic deletion of irrelevant learned clauses.
    pub reduce_db: bool,
    /// Learned clauses kept before the first reduction.
    pub reduce_base: u64,
    /// Additional learned clauses allowed after each reduction.
    pub reduce_inc: u64,
}

impl Default for SolverOptions {
    fn default() -> SolverOptions {
        SolverOptions {
            order_mode: OrderMode::Standard,
            record_cdg: true,
            halve_interval: 256,
            luby_unit: 128,
            reduce_db: true,
            reduce_base: 2000,
            reduce_inc: 1000,
        }
    }
}

/// A long-clause watch entry: the watching clause and a blocker literal
/// whose truth lets BCP skip the clause without touching its body.
#[derive(Clone, Copy, Debug)]
struct LongWatch {
    clause: ClauseRef,
    blocker: Lit,
}

/// A binary-clause watch entry: the *other* literal of the clause is stored
/// inline, so BCP decides unit/conflict from the watcher alone — zero clause
/// dereferences. `clause` is only consulted as the reason/conflict reference.
#[derive(Clone, Copy, Debug)]
struct BinWatch {
    clause: ClauseRef,
    implied: Lit,
}

/// The two-tier watch lists of one literal: binary clauses (implied literal
/// inline) and long clauses (blocker watches over the arena).
#[derive(Debug, Default)]
struct WatchLists {
    bins: Vec<BinWatch>,
    longs: Vec<LongWatch>,
}

impl WatchLists {
    fn clear(&mut self) {
        self.bins.clear();
        self.longs.clear();
    }
}

/// A Chaff-style CDCL SAT solver (see the crate docs for the feature list).
///
/// # Examples
///
/// Finding a model:
///
/// ```
/// use rbmc_cnf::{CnfFormula, Lit};
/// use rbmc_solver::{SolveResult, Solver};
///
/// let mut f = CnfFormula::new();
/// let x = f.new_var();
/// let y = f.new_var();
/// f.add_clause([x.positive(), y.positive()]);
/// f.add_clause([x.negative()]);
/// let mut solver = Solver::from_formula(&f);
/// assert_eq!(solver.solve(), SolveResult::Sat);
/// let model = solver.model().expect("model after SAT");
/// assert!(!model[x.index()] && model[y.index()]);
/// ```
pub struct Solver {
    opts: SolverOptions,
    /// Flat clause storage: originals first (offset-stable), learned after.
    /// CDG pseudo-IDs live in the record headers (original ids coincide with
    /// their input position; learned clauses get fresh ids, interleaved with
    /// the virtual unit-fact nodes).
    clauses: ClauseArena,
    /// Arena reference of each original clause, indexed by input position.
    original_refs: Vec<ClauseRef>,
    /// Number of original (input) clauses.
    num_original: usize,
    /// Arena offset where the learned region starts (set at the first solve
    /// call; the original region below it never moves).
    first_learned: u32,
    /// Total literal occurrences in the original formula — the paper's
    /// "number of original literals" used by the dynamic switch.
    num_original_lits: u64,
    watches: Vec<WatchLists>,
    values: Vec<LBool>,
    levels: Vec<u32>,
    reasons: Vec<Option<ClauseRef>>,
    /// CDG node standing for the level-0 unit fact of a variable.
    unit_node: Vec<Option<ClauseId>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    order: LitOrder,
    cdg: Cdg,
    stats: SolverStats,
    /// Ranking installed by [`Solver::set_var_ranking`], applied at setup.
    bmc_scores: Vec<u64>,
    /// Pending unit original clauses, enqueued at setup.
    pending_units: Vec<ClauseRef>,
    /// An empty original clause, if one was added.
    empty_clause: Option<ClauseRef>,
    result: Option<SolveResult>,
    model: Option<Vec<bool>>,
    core: Option<Vec<usize>>,
    started: bool,
    /// Dynamic mode has fallen back to pure VSIDS.
    switched: bool,
    conflicts_at_last_halve: u64,
    conflicts_at_restart: u64,
    restart_number: u64,
    live_learned: u64,
    reduce_threshold: u64,
    /// Scratch for conflict analysis.
    seen: Vec<bool>,
    /// Scratch antecedent list of level-0 unit-fact CDG nodes (reused so a
    /// level-0 implication records its node allocation-free).
    unit_ants: Vec<ClauseId>,
    /// Scratch antecedent list of conflict analysis.
    conflict_ants: Vec<ClauseId>,
}

impl fmt::Debug for Solver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Solver")
            .field("num_vars", &self.num_vars())
            .field("num_original", &self.num_original)
            .field("result", &self.result)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// Creates an empty solver with default options.
    pub fn new() -> Solver {
        Solver::with_options(SolverOptions::default())
    }

    /// Creates an empty solver with the given options.
    pub fn with_options(opts: SolverOptions) -> Solver {
        Solver {
            opts,
            clauses: ClauseArena::new(),
            original_refs: Vec::new(),
            num_original: 0,
            first_learned: 0,
            num_original_lits: 0,
            watches: Vec::new(),
            values: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            unit_node: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            order: LitOrder::new(0),
            cdg: Cdg::new(0),
            stats: SolverStats::new(),
            bmc_scores: Vec::new(),
            pending_units: Vec::new(),
            empty_clause: None,
            result: None,
            model: None,
            core: None,
            started: false,
            switched: false,
            conflicts_at_last_halve: 0,
            conflicts_at_restart: 0,
            restart_number: 0,
            live_learned: 0,
            reduce_threshold: opts.reduce_base,
            seen: Vec::new(),
            unit_ants: Vec::new(),
            conflict_ants: Vec::new(),
        }
    }

    /// Creates a solver loaded with `formula` (default options).
    pub fn from_formula(formula: &CnfFormula) -> Solver {
        Solver::from_formula_with(formula, SolverOptions::default())
    }

    /// Creates a solver loaded with `formula` and the given options.
    pub fn from_formula_with(formula: &CnfFormula, opts: SolverOptions) -> Solver {
        let mut solver = Solver::with_options(opts);
        solver.reserve_vars(formula.num_vars());
        for clause in formula {
            solver.add_clause(clause.lits());
        }
        solver
    }

    /// Ensures the solver knows about variables `0..num_vars`.
    pub fn reserve_vars(&mut self, num_vars: usize) {
        if num_vars <= self.values.len() {
            return;
        }
        self.values.resize(num_vars, LBool::Undef);
        self.levels.resize(num_vars, 0);
        self.reasons.resize(num_vars, None);
        self.unit_node.resize(num_vars, None);
        self.seen.resize(num_vars, false);
        self.watches.resize_with(2 * num_vars, WatchLists::default);
        self.order.grow(num_vars);
    }

    /// Number of variables known to the solver.
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Number of original (input) clauses.
    pub fn num_original_clauses(&self) -> usize {
        self.num_original
    }

    /// Total literal occurrences over the original clauses (the paper's
    /// `#original literals`, the base of the dynamic-switch threshold).
    pub fn num_original_literals(&self) -> u64 {
        self.num_original_lits
    }

    /// The options this solver was built with.
    pub fn options(&self) -> &SolverOptions {
        &self.opts
    }

    /// Adds an original clause. The clause's ID for core reporting is its
    /// 0-based position in the order of `add_clause` calls.
    ///
    /// Duplicate literals are removed internally; a clause containing both
    /// phases of a variable is stored but ignored by the search (it is a
    /// tautology and can never be part of an unsatisfiable core).
    ///
    /// # Panics
    ///
    /// Panics if called after the first solve call (this solver refines a
    /// single instance; BMC creates a fresh solver per unrolling depth).
    pub fn add_clause(&mut self, lits: &[Lit]) {
        assert!(
            !self.started,
            "clauses must be added before the first solve call"
        );
        // The raw literal count feeds both the initial cha_score and the
        // dynamic-switch threshold.
        self.num_original_lits += lits.len() as u64;
        let max_var = lits.iter().map(|l| l.var().index() + 1).max().unwrap_or(0);
        self.reserve_vars(max_var);
        for &lit in lits {
            self.order.add_initial_count(lit, 1);
        }

        let clause = Clause::new(lits.to_vec());
        let (stored, tautology) = match clause.normalized() {
            None => (Vec::new(), true),
            Some(n) => (n.into_lits(), false),
        };
        // An original clause's CDG pseudo-ID is its input position.
        let cref = self
            .clauses
            .alloc(&stored, false, self.original_refs.len() as u32);
        self.original_refs.push(cref);
        if tautology {
            self.stats.tautologies += 1;
        } else {
            match stored.len() {
                0 => {
                    self.empty_clause.get_or_insert(cref);
                }
                1 => self.pending_units.push(cref),
                _ => self.watch_clause(cref, stored.len(), stored[0], stored[1]),
            }
        }
        self.num_original = self.original_refs.len();
    }

    /// Installs the per-variable `bmc_score` ranking (§3.2). Scores default
    /// to zero for variables beyond the end of `scores`. The ranking matters
    /// only when [`SolverOptions::order_mode`] is static or dynamic.
    ///
    /// # Panics
    ///
    /// Panics if called after the first solve call.
    pub fn set_var_ranking(&mut self, scores: &[u64]) {
        assert!(
            !self.started,
            "the ranking must be installed before solving"
        );
        self.bmc_scores = scores.to_vec();
    }

    /// Solves without limits.
    ///
    /// # Panics
    ///
    /// Never returns [`SolveResult::Unknown`]; panics if it would (cannot
    /// happen without limits).
    pub fn solve(&mut self) -> SolveResult {
        let result = self.solve_limited(&Limits::default());
        assert_ne!(
            result,
            SolveResult::Unknown,
            "unlimited solve cannot time out"
        );
        result
    }

    /// Solves under resource limits. Returns [`SolveResult::Unknown`] when a
    /// limit is exceeded; calling again (with fresh limits) resumes the
    /// search from where it stopped.
    pub fn solve_limited(&mut self, limits: &Limits) -> SolveResult {
        if let Some(result) = self.result {
            return result;
        }
        let base_conflicts = self.stats.conflicts;
        let base_decisions = self.stats.decisions;
        let base_propagations = self.stats.propagations;

        if !self.started {
            self.started = true;
            self.cdg = Cdg::new(self.num_original);
            self.first_learned = self.clauses.end_offset();
            if let Some(empty) = self.empty_clause {
                let id = self.clauses.cdg_id(empty);
                self.finish_unsat(vec![id]);
                return SolveResult::Unsat;
            }
            let use_bmc = !matches!(self.opts.order_mode, OrderMode::Standard);
            let scores = std::mem::take(&mut self.bmc_scores);
            self.order.set_bmc_scores(&scores, use_bmc);
            self.bmc_scores = scores;
            self.order.rebuild(&self.values);
            // Enqueue the input unit clauses at level 0.
            for i in 0..self.pending_units.len() {
                let cref = self.pending_units[i];
                let lit = self.clauses.lit(cref, 0);
                match self.values[lit.var().index()].xor(lit.is_negative()) {
                    LBool::Undef => self.enqueue(lit, Some(cref)),
                    LBool::True => {}
                    LBool::False => {
                        self.record_conflict_clause_final(cref);
                        return SolveResult::Unsat;
                    }
                }
            }
        }

        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.record_conflict_clause_final(conflict);
                    return SolveResult::Unsat;
                }
                self.handle_conflict(conflict);
                self.after_conflict_housekeeping();
                if self.limit_exceeded(limits, base_conflicts, base_decisions, base_propagations) {
                    return SolveResult::Unknown;
                }
            } else {
                self.maybe_switch_to_vsids();
                if self.limit_exceeded(limits, base_conflicts, base_decisions, base_propagations) {
                    return SolveResult::Unknown;
                }
                match self.order.pop_best(&self.values) {
                    Some(lit) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(lit, None);
                    }
                    None => {
                        self.finish_sat();
                        return SolveResult::Sat;
                    }
                }
            }
        }
    }

    /// The satisfying assignment, if the last solve returned SAT.
    /// `model()[v]` is the value of variable `v`.
    pub fn model(&self) -> Option<&[bool]> {
        self.model.as_deref()
    }

    /// The unsatisfiable core, if the last solve returned UNSAT and CDG
    /// recording was enabled: sorted IDs (input positions) of the original
    /// clauses responsible for the final conflict (§3.1).
    pub fn core_clauses(&self) -> Option<&[usize]> {
        self.core.as_deref()
    }

    /// The variables appearing in the unsatisfiable core (§3.2 feeds these
    /// into `update_ranking`). Sorted, no duplicates.
    pub fn core_vars(&self) -> Option<Vec<Var>> {
        let core = self.core.as_ref()?;
        let mut seen = vec![false; self.num_vars()];
        for &ci in core {
            let cref = self.original_refs[ci];
            for i in 0..self.clauses.len(cref) {
                seen[self.clauses.lit(cref, i).var().index()] = true;
            }
        }
        Some(
            seen.iter()
                .enumerate()
                .filter(|&(_, &s)| s)
                .map(|(i, _)| Var::new(i))
                .collect(),
        )
    }

    /// Search statistics so far.
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// The result of the last solve call, if any.
    pub fn result(&self) -> Option<SolveResult> {
        self.result
    }

    // ----- internals -------------------------------------------------------

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    #[inline]
    fn lit_value(&self, lit: Lit) -> LBool {
        self.values[lit.var().index()].xor(lit.is_negative())
    }

    /// Registers the watches of a `len`-literal clause whose current watch
    /// pair is `l0`/`l1`: binary clauses go to the inline tier, longer
    /// clauses to the blocker tier.
    fn watch_clause(&mut self, cref: ClauseRef, len: usize, l0: Lit, l1: Lit) {
        debug_assert!(len >= 2);
        if len == 2 {
            self.watches[l0.code()].bins.push(BinWatch {
                clause: cref,
                implied: l1,
            });
            self.watches[l1.code()].bins.push(BinWatch {
                clause: cref,
                implied: l0,
            });
        } else {
            self.watches[l0.code()].longs.push(LongWatch {
                clause: cref,
                blocker: l1,
            });
            self.watches[l1.code()].longs.push(LongWatch {
                clause: cref,
                blocker: l0,
            });
        }
    }

    /// Assigns `lit` true at the current level with the given reason clause.
    ///
    /// At level 0 this also materializes the literal's unit node in the CDG
    /// so later proofs can cite the fact (see module docs of `cdg`).
    fn enqueue(&mut self, lit: Lit, reason: Option<ClauseRef>) {
        let v = lit.var().index();
        debug_assert!(self.values[v].is_undef());
        self.values[v] = LBool::from(lit.is_positive());
        self.levels[v] = self.decision_level();
        self.reasons[v] = reason;
        self.trail.push(lit);
        if reason.is_some() {
            self.stats.propagations += 1;
        }
        if self.opts.record_cdg && self.decision_level() == 0 {
            let reason = reason.expect("level-0 assignments are always implied");
            self.unit_ants.clear();
            self.unit_ants.push(self.clauses.cdg_id(reason));
            for i in 0..self.clauses.len(reason) {
                let other = self.clauses.lit(reason, i);
                if other.var() != lit.var() {
                    let node = self.unit_node[other.var().index()]
                        .expect("supporting level-0 fact was recorded earlier");
                    self.unit_ants.push(node);
                }
            }
            let node = self.cdg.record_learned(&self.unit_ants);
            self.unit_node[v] = Some(node);
        }
    }

    /// Watched-literal BCP. Returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            let false_lit = !p;
            let mut conflict = None;

            // Binary tier: unit/conflict decided from the watcher alone.
            let bins = std::mem::take(&mut self.watches[false_lit.code()].bins);
            for w in &bins {
                match self.lit_value(w.implied) {
                    LBool::True => {}
                    LBool::Undef => self.enqueue(w.implied, Some(w.clause)),
                    LBool::False => {
                        conflict = Some(w.clause);
                        break;
                    }
                }
            }
            self.watches[false_lit.code()].bins = bins;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }

            // Long tier: blocker watches over the arena.
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()].longs);
            let mut i = 0;
            'watches: while i < ws.len() {
                let w = ws[i];
                // A true blocker satisfies the clause.
                if self.lit_value(w.blocker) == LBool::True {
                    i += 1;
                    continue;
                }
                let cref = w.clause;
                // Put the false literal in slot 1.
                if self.clauses.lit(cref, 0) == false_lit {
                    self.clauses.swap_lits(cref, 0, 1);
                }
                debug_assert_eq!(self.clauses.lit(cref, 1), false_lit);
                let first = self.clauses.lit(cref, 0);
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                for k in 2..self.clauses.len(cref) {
                    let candidate = self.clauses.lit(cref, k);
                    if self.lit_value(candidate) != LBool::False {
                        self.clauses.swap_lits(cref, 1, k);
                        self.watches[candidate.code()].longs.push(LongWatch {
                            clause: cref,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watches;
                    }
                }
                // No replacement: unit or conflict on `first`.
                if self.lit_value(first) == LBool::False {
                    conflict = Some(cref);
                    self.qhead = self.trail.len();
                    break;
                }
                self.enqueue(first, Some(cref));
                i += 1;
            }
            self.watches[false_lit.code()].longs = ws;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// First-UIP conflict analysis, clause learning, and backjumping.
    fn handle_conflict(&mut self, conflict: ClauseRef) {
        let current_level = self.decision_level();
        self.conflict_ants.clear();
        let mut learnt: Vec<Lit> = vec![Lit::from_code(0)]; // slot 0 = asserting literal
        let mut path_count = 0usize;
        let mut index = self.trail.len();
        let mut confl = conflict;
        let mut resolve_lit: Option<Lit> = None;

        loop {
            if self.opts.record_cdg {
                self.conflict_ants.push(self.clauses.cdg_id(confl));
            }
            self.clauses.bump_activity(confl);
            // The clause body is present: reasons of assigned literals and the
            // conflicting clause are never deleted (locked or just used).
            for j in 0..self.clauses.len(confl) {
                let q = self.clauses.lit(confl, j);
                if Some(q) == resolve_lit {
                    continue;
                }
                let v = q.var().index();
                if self.seen[v] {
                    continue;
                }
                if self.levels[v] == 0 {
                    // Dropping a root-level literal: cite its unit fact so the
                    // CDG still derives the learned clause by pure resolution.
                    if self.opts.record_cdg {
                        let node =
                            self.unit_node[v].expect("root-level assignment has a unit node");
                        self.conflict_ants.push(node);
                    }
                    continue;
                }
                self.seen[v] = true;
                if self.levels[v] == current_level {
                    path_count += 1;
                } else {
                    learnt.push(q);
                }
            }
            // Next seen literal on the trail (at the current level).
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let l = self.trail[index];
            self.seen[l.var().index()] = false;
            path_count -= 1;
            if path_count == 0 {
                learnt[0] = !l;
                break;
            }
            confl = self.reasons[l.var().index()]
                .expect("implied literal at the conflict level has a reason");
            resolve_lit = Some(l);
        }
        for lit in &learnt[1..] {
            self.seen[lit.var().index()] = false;
        }

        // Backjump level: highest level among the non-asserting literals.
        let backtrack_level = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.levels[learnt[i].var().index()] > self.levels[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.levels[learnt[1].var().index()]
        };
        self.backtrack(backtrack_level);

        // Store the learned clause, watch it, propagate its asserting literal.
        self.stats.learned += 1;
        self.stats.learned_literals += learnt.len() as u64;
        self.live_learned += 1;
        self.order.on_learned_clause(&learnt);
        let cdg_id = if self.opts.record_cdg {
            let id = self.cdg.record_learned(&self.conflict_ants);
            self.stats.cdg_nodes = self.cdg.num_nodes();
            self.stats.cdg_edges = self.cdg.num_edges();
            id
        } else {
            ClauseId::MAX
        };
        let cref = self.clauses.alloc(&learnt, true, cdg_id);
        self.clauses.set_activity(cref, 1);
        if learnt.len() >= 2 {
            self.watch_clause(cref, learnt.len(), learnt[0], learnt[1]);
        }
        let asserting = learnt[0];
        self.enqueue(asserting, Some(cref));
    }

    /// Undoes all assignments above `level`.
    fn backtrack(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let new_len = self.trail_lim[level as usize];
        for i in (new_len..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.values[v.index()] = LBool::Undef;
            self.reasons[v.index()] = None;
            self.order.reinsert_var(v);
        }
        self.trail.truncate(new_len);
        self.trail_lim.truncate(level as usize);
        self.qhead = new_len;
    }

    /// Periodic work after each conflict: score halving, restarts, clause
    /// database reduction.
    fn after_conflict_housekeeping(&mut self) {
        if self.stats.conflicts - self.conflicts_at_last_halve >= self.opts.halve_interval {
            self.conflicts_at_last_halve = self.stats.conflicts;
            self.order.halve_scores();
            self.order.rebuild(&self.values);
            self.stats.score_halvings += 1;
        }
        if self.opts.luby_unit > 0 {
            let budget = luby(self.restart_number) * self.opts.luby_unit;
            if self.stats.conflicts - self.conflicts_at_restart >= budget {
                self.restart_number += 1;
                self.conflicts_at_restart = self.stats.conflicts;
                self.stats.restarts += 1;
                self.backtrack(0);
            }
        }
        if self.opts.reduce_db && self.live_learned >= self.reduce_threshold {
            self.reduce_learned_db();
            self.reduce_threshold += self.opts.reduce_inc;
        }
    }

    /// Deletes the less relevant half of the learned clauses (by activity,
    /// then recency) and compacts the arena, relocating the survivors so the
    /// learned region stays contiguous — no tombstones for BCP to skip.
    /// Locked clauses (reasons of current assignments) and short clauses are
    /// kept. Bodies are freed; CDG pseudo-IDs survive in the headers.
    fn reduce_learned_db(&mut self) {
        // (activity, cref) over unlocked long learned clauses.
        let mut candidates: Vec<(u32, ClauseRef)> = Vec::new();
        let mut cursor = if self.first_learned < self.clauses.end_offset() {
            Some(ClauseRef::at(self.first_learned))
        } else {
            None
        };
        while let Some(cref) = cursor {
            cursor = self.clauses.next(cref);
            debug_assert!(self.clauses.is_learned(cref));
            if self.clauses.len(cref) <= 2 || self.is_locked(cref) {
                continue;
            }
            candidates.push((self.clauses.activity(cref), cref));
        }
        candidates.sort_unstable();
        let to_delete = candidates.len() / 2;
        for &(_, cref) in candidates.iter().take(to_delete) {
            self.clauses.mark_deleted(cref);
            self.live_learned -= 1;
            self.stats.deleted += 1;
        }

        // Compact the learned region and patch the relocated references.
        let remap = self.clauses.compact_learned(self.first_learned);
        self.stats.compactions += 1;
        if !remap.is_empty() {
            for reason in self.reasons.iter_mut().flatten() {
                if reason.offset() >= self.first_learned {
                    if let Ok(i) = remap.binary_search_by_key(&reason.offset(), |&(old, _)| old) {
                        *reason = ClauseRef::at(remap[i].1);
                    }
                }
            }
        }
        // Halve activities so future reductions favour recent relevance.
        self.clauses.halve_learned_activities(self.first_learned);
        self.rebuild_watches();
    }

    /// Rebuilds every watch list from the (compacted) arena. The watch pair
    /// of each clause is its literal slots 0 and 1, which BCP keeps current,
    /// so the rebuilt lists preserve the watch invariant mid-search.
    fn rebuild_watches(&mut self) {
        for wl in &mut self.watches {
            wl.clear();
        }
        let mut cursor = self.clauses.first();
        while let Some(cref) = cursor {
            cursor = self.clauses.next(cref);
            debug_assert!(
                !self.clauses.is_deleted(cref),
                "compaction left a tombstone"
            );
            let len = self.clauses.len(cref);
            if len >= 2 {
                let (l0, l1) = (self.clauses.lit(cref, 0), self.clauses.lit(cref, 1));
                self.watch_clause(cref, len, l0, l1);
            }
        }
    }

    /// A clause is locked while it is the reason of its asserting literal.
    fn is_locked(&self, cref: ClauseRef) -> bool {
        if self.clauses.len(cref) == 0 {
            return false;
        }
        let first = self.clauses.lit(cref, 0);
        self.lit_value(first) == LBool::True && self.reasons[first.var().index()] == Some(cref)
    }

    /// Dynamic configuration: fall back to pure VSIDS once the decision count
    /// betrays an inaccurate estimation (§3.3).
    fn maybe_switch_to_vsids(&mut self) {
        if self.switched || !self.order.uses_bmc() {
            return;
        }
        if let OrderMode::Dynamic { divisor } = self.opts.order_mode {
            if self.stats.decisions > self.num_original_lits / u64::from(divisor.max(1)) {
                self.switched = true;
                self.stats.switched_to_vsids = true;
                self.order.disable_bmc();
                self.order.rebuild(&self.values);
            }
        }
    }

    fn limit_exceeded(
        &self,
        limits: &Limits,
        base_conflicts: u64,
        base_decisions: u64,
        base_propagations: u64,
    ) -> bool {
        if let Some(n) = limits.max_conflicts {
            if self.stats.conflicts - base_conflicts >= n {
                return true;
            }
        }
        if let Some(n) = limits.max_decisions {
            if self.stats.decisions - base_decisions >= n {
                return true;
            }
        }
        if let Some(n) = limits.max_propagations {
            if self.stats.propagations - base_propagations >= n {
                return true;
            }
        }
        if let Some(deadline) = limits.deadline {
            // Coarse check: only every 64 conflicts to keep `Instant::now`
            // off the hot path.
            if (self.stats.conflicts - base_conflicts).is_multiple_of(64)
                && Instant::now() >= deadline
            {
                return true;
            }
        }
        false
    }

    fn finish_sat(&mut self) {
        let model = self
            .values
            .iter()
            .map(|v| v.to_bool().expect("SAT leaves no variable unassigned"))
            .collect();
        self.model = Some(model);
        self.result = Some(SolveResult::Sat);
    }

    /// Records the final (empty-clause) conflict: the conflicting clause plus
    /// the root-level unit facts of each of its literals, then extracts the
    /// core.
    fn record_conflict_clause_final(&mut self, conflict: ClauseRef) {
        if self.opts.record_cdg {
            let mut ants = vec![self.clauses.cdg_id(conflict)];
            for i in 0..self.clauses.len(conflict) {
                let lit = self.clauses.lit(conflict, i);
                if let Some(node) = self.unit_node[lit.var().index()] {
                    ants.push(node);
                }
            }
            self.finish_unsat(ants);
        } else {
            self.result = Some(SolveResult::Unsat);
        }
    }

    fn finish_unsat(&mut self, final_antecedents: Vec<ClauseId>) {
        if self.opts.record_cdg {
            self.cdg.record_final(final_antecedents);
            self.core = self.cdg.extract_core();
            self.stats.cdg_nodes = self.cdg.num_nodes();
            self.stats.cdg_edges = self.cdg.num_edges();
        }
        self.result = Some(SolveResult::Unsat);
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, …
/// (`x` is the 0-based restart number).
fn luby(x: u64) -> u64 {
    // Find the finite subsequence that contains index x and its size.
    let mut size = 1u64;
    let mut seq = 0u32;
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    let mut x = x;
    while size - 1 != x {
        size = (size - 1) >> 1;
        seq -= 1;
        x %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbmc_cnf::parse_dimacs;

    fn lit(n: i64) -> Lit {
        Lit::from_dimacs(n)
    }

    fn solve_text(text: &str) -> (SolveResult, Solver) {
        let f = parse_dimacs(text).unwrap();
        let mut s = Solver::from_formula(&f);
        let r = s.solve();
        (r, s)
    }

    #[test]
    fn luby_sequence_prefix() {
        let got: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(got, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn empty_formula_is_sat() {
        let (r, s) = solve_text("p cnf 0 0\n");
        assert_eq!(r, SolveResult::Sat);
        assert_eq!(s.model().unwrap().len(), 0);
    }

    #[test]
    fn single_unit_clause() {
        let (r, s) = solve_text("p cnf 1 1\n-1 0\n");
        assert_eq!(r, SolveResult::Sat);
        assert_eq!(s.model().unwrap(), &[false]);
    }

    #[test]
    fn contradictory_units_are_unsat_with_exact_core() {
        let (r, s) = solve_text("p cnf 2 3\n1 0\n-1 0\n2 0\n");
        assert_eq!(r, SolveResult::Unsat);
        // Clause 2 (x2) is irrelevant: the core is exactly the two units.
        assert_eq!(s.core_clauses().unwrap(), &[0, 1]);
        assert_eq!(s.core_vars().unwrap(), vec![Var::new(0)]);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let (r, s) = solve_text("p cnf 1 2\n1 0\n0\n");
        assert_eq!(r, SolveResult::Unsat);
        assert_eq!(s.core_clauses().unwrap(), &[1]);
    }

    #[test]
    fn simple_propagation_chain_unsat() {
        // x1, x1->x2, x2->x3, ¬x3: UNSAT involving all four clauses.
        let (r, s) = solve_text("p cnf 3 4\n1 0\n-1 2 0\n-2 3 0\n-3 0\n");
        assert_eq!(r, SolveResult::Unsat);
        assert_eq!(s.core_clauses().unwrap(), &[0, 1, 2, 3]);
    }

    #[test]
    fn sat_model_satisfies_formula() {
        let text = "p cnf 4 5\n1 2 0\n-1 3 0\n-2 -3 0\n3 4 0\n-4 1 0\n";
        let f = parse_dimacs(text).unwrap();
        let (r, s) = solve_text(text);
        assert_eq!(r, SolveResult::Sat);
        assert_eq!(f.evaluate(s.model().unwrap()), Some(true));
    }

    #[test]
    fn pigeonhole_two_pigeons_one_hole() {
        // p1 in hole, p2 in hole, not both: UNSAT.
        let (r, s) = solve_text("p cnf 2 3\n1 0\n2 0\n-1 -2 0\n");
        assert_eq!(r, SolveResult::Unsat);
        assert_eq!(s.core_clauses().unwrap(), &[0, 1, 2]);
    }

    #[test]
    fn unsat_needs_search() {
        // All eight clauses over three variables: classically UNSAT and
        // requires actual conflict-driven search.
        let text = "p cnf 3 8\n1 2 3 0\n1 2 -3 0\n1 -2 3 0\n1 -2 -3 0\n\
                    -1 2 3 0\n-1 2 -3 0\n-1 -2 3 0\n-1 -2 -3 0\n";
        let (r, s) = solve_text(text);
        assert_eq!(r, SolveResult::Unsat);
        let core = s.core_clauses().unwrap();
        assert!(!core.is_empty());
        // The core must itself be UNSAT.
        let f = parse_dimacs(text).unwrap();
        let sub = f.subformula(core);
        let mut s2 = Solver::from_formula(&sub);
        assert_eq!(s2.solve(), SolveResult::Unsat);
    }

    #[test]
    fn decision_limit_reports_unknown_and_resumes() {
        // A formula that needs at least a couple of decisions.
        let text = "p cnf 6 4\n1 2 0\n3 4 0\n5 6 0\n-1 -3 0\n";
        let f = parse_dimacs(text).unwrap();
        let mut s = Solver::from_formula(&f);
        let r = s.solve_limited(&Limits::new().with_max_decisions(1));
        assert_eq!(r, SolveResult::Unknown);
        // Resuming without limits finishes the job.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(f.evaluate(s.model().unwrap()), Some(true));
    }

    #[test]
    fn tautology_never_in_core() {
        let (r, s) = solve_text("p cnf 2 4\n1 -1 0\n2 0\n-2 0\n1 0\n");
        assert_eq!(r, SolveResult::Unsat);
        assert_eq!(s.core_clauses().unwrap(), &[1, 2]);
    }

    #[test]
    fn duplicate_literals_are_handled() {
        let (r, s) = solve_text("p cnf 1 2\n1 1 0\n-1 -1 0\n");
        assert_eq!(r, SolveResult::Unsat);
        assert_eq!(s.core_clauses().unwrap(), &[0, 1]);
    }

    #[test]
    fn static_order_decides_ranked_vars_first() {
        // SAT formula; ranked variable should be the first decision.
        let f = parse_dimacs("p cnf 4 2\n1 2 0\n3 4 0\n").unwrap();
        let mut s = Solver::from_formula_with(
            &f,
            SolverOptions {
                order_mode: OrderMode::Static,
                ..SolverOptions::default()
            },
        );
        s.set_var_ranking(&[0, 0, 0, 7]); // rank x4 highest
        assert_eq!(s.solve(), SolveResult::Sat);
        let model = s.model().unwrap();
        // x4 was decided first; its positive literal was chosen, so true.
        assert!(model[3]);
    }

    #[test]
    fn cached_result_is_returned() {
        let (r, mut s) = solve_text("p cnf 1 1\n1 0\n");
        assert_eq!(r, SolveResult::Sat);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.result(), Some(SolveResult::Sat));
    }

    #[test]
    #[should_panic(expected = "before the first solve")]
    fn adding_clause_after_solve_panics() {
        let (_, mut s) = solve_text("p cnf 1 1\n1 0\n");
        s.add_clause(&[lit(-1)]);
    }

    #[test]
    fn stats_count_decisions_and_propagations() {
        let (_, s) = solve_text("p cnf 3 3\n1 2 0\n-1 3 0\n-3 -2 0\n");
        let stats = s.stats();
        assert!(stats.decisions >= 1);
        // At least the implied assignments were counted.
        assert!(stats.decisions + stats.propagations >= 3);
    }
}
