//! Cross-validation of the CDCL solver against the reference oracles on
//! random formulas, across all ordering modes and housekeeping settings.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rbmc_cnf::{CnfFormula, Lit, Var};
use rbmc_solver::{brute_force_sat, reference_dpll, OrderMode, SolveResult, Solver, SolverOptions};

/// Random k-SAT formula with `num_clauses` clauses over `num_vars` variables.
fn random_ksat(rng: &mut StdRng, num_vars: usize, num_clauses: usize, k: usize) -> CnfFormula {
    let mut f = CnfFormula::with_vars(num_vars);
    for _ in 0..num_clauses {
        let len = 1 + rng.gen_range(0..k);
        let lits: Vec<Lit> = (0..len)
            .map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars)), rng.gen_bool(0.5)))
            .collect();
        f.add_clause(lits);
    }
    f
}

fn stress_options() -> Vec<SolverOptions> {
    vec![
        SolverOptions::default(),
        // No restarts, no deletion: the plain search.
        SolverOptions {
            luby_unit: 0,
            reduce_db: false,
            ..SolverOptions::default()
        },
        // Restart every conflict: stress the restart path.
        SolverOptions {
            luby_unit: 1,
            ..SolverOptions::default()
        },
        // Halve scores every conflict: stress heap rebuilds.
        SolverOptions {
            halve_interval: 1,
            ..SolverOptions::default()
        },
        // Aggressive clause deletion: stress CDG survival.
        SolverOptions {
            reduce_base: 2,
            reduce_inc: 1,
            ..SolverOptions::default()
        },
        // CDG off (no core, but verdicts must match).
        SolverOptions {
            record_cdg: false,
            ..SolverOptions::default()
        },
    ]
}

/// Solves `f` and cross-checks the verdict, the model, and the core.
fn check_formula(f: &CnfFormula, opts: SolverOptions, expected_sat: bool) {
    let mut solver = Solver::from_formula_with(f, opts);
    let result = solver.solve();
    match result {
        SolveResult::Sat => {
            assert!(expected_sat, "solver said SAT, oracle said UNSAT: {f}");
            let model = solver.model().expect("model after SAT");
            assert_eq!(f.evaluate(model), Some(true), "model does not satisfy {f}");
        }
        SolveResult::Unsat => {
            assert!(!expected_sat, "solver said UNSAT, oracle said SAT: {f}");
            if opts.record_cdg {
                let core = solver.core_clauses().expect("core after UNSAT");
                assert!(!core.is_empty());
                // The core must itself be unsatisfiable.
                let sub = f.subformula(core);
                assert!(
                    brute_force_sat(&sub).is_none(),
                    "extracted core is satisfiable: {f} core {core:?}"
                );
            }
        }
        SolveResult::Unknown => panic!("unlimited solve returned Unknown"),
    }
}

#[test]
fn random_3sat_small_vs_brute_force_all_option_sets() {
    let mut rng = StdRng::seed_from_u64(0xDAC_2004);
    for round in 0..120 {
        let num_vars = 2 + rng.gen_range(0..8);
        // Around the 3-SAT phase transition to get a mix of SAT/UNSAT.
        let num_clauses = (num_vars as f64 * 4.3) as usize + rng.gen_range(0..4);
        let f = random_ksat(&mut rng, num_vars, num_clauses, 3);
        let expected = brute_force_sat(&f).is_some();
        for opts in stress_options() {
            check_formula(&f, opts, expected);
        }
        let _ = round;
    }
}

#[test]
fn random_3sat_medium_vs_dpll() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..25 {
        let num_vars = 10 + rng.gen_range(0..15);
        let num_clauses = (num_vars as f64 * 4.2) as usize;
        let f = random_ksat(&mut rng, num_vars, num_clauses, 3);
        let expected = reference_dpll(&f).is_some();
        check_formula(&f, SolverOptions::default(), expected);
    }
}

#[test]
fn random_mixed_width_formulas() {
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..60 {
        let num_vars = 2 + rng.gen_range(0..10);
        let num_clauses = rng.gen_range(1..40);
        let f = random_ksat(&mut rng, num_vars, num_clauses, 5);
        let expected = brute_force_sat(&f).is_some();
        check_formula(&f, SolverOptions::default(), expected);
    }
}

#[test]
fn ordering_modes_agree_on_verdict() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..40 {
        let num_vars = 4 + rng.gen_range(0..10);
        let num_clauses = (num_vars as f64 * 4.3) as usize;
        let f = random_ksat(&mut rng, num_vars, num_clauses, 3);
        let expected = brute_force_sat(&f).is_some();
        // A synthetic ranking (favour low-index variables strongly).
        let ranking: Vec<u64> = (0..num_vars).map(|v| (num_vars - v) as u64 * 10).collect();
        for mode in [
            OrderMode::Standard,
            OrderMode::Static,
            OrderMode::Dynamic { divisor: 64 },
            OrderMode::Dynamic { divisor: 1 },
        ] {
            let mut solver = Solver::from_formula_with(
                &f,
                SolverOptions {
                    order_mode: mode,
                    ..SolverOptions::default()
                },
            );
            solver.set_var_ranking(&ranking);
            let result = solver.solve();
            assert_eq!(
                result == SolveResult::Sat,
                expected,
                "mode {mode:?} verdict mismatch on {f}"
            );
            if result == SolveResult::Sat {
                assert_eq!(f.evaluate(solver.model().unwrap()), Some(true));
            } else {
                let core = solver.core_clauses().unwrap();
                let sub = f.subformula(core);
                assert!(brute_force_sat(&sub).is_none(), "mode {mode:?} bad core");
            }
        }
    }
}

#[test]
fn solver_is_deterministic() {
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..10 {
        let f = random_ksat(&mut rng, 12, 50, 3);
        let run = |f: &CnfFormula| {
            let mut s = Solver::from_formula(f);
            let r = s.solve();
            (
                r,
                s.stats().clone(),
                s.core_clauses().map(<[usize]>::to_vec),
            )
        };
        let a = run(&f);
        let b = run(&f);
        assert_eq!(a, b, "two runs diverged on {f}");
    }
}

#[test]
fn core_is_reasonably_tight_on_padded_formulas() {
    // An UNSAT kernel plus many satisfiable padding clauses over fresh
    // variables: the core must never touch the padding.
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for _ in 0..20 {
        let mut f = CnfFormula::new();
        // Kernel over vars 0..3: (a)(−a b)(−b c)(−c) is UNSAT.
        let a = Var::new(0);
        let b = Var::new(1);
        let c = Var::new(2);
        f.add_clause([a.positive()]);
        f.add_clause([a.negative(), b.positive()]);
        f.add_clause([b.negative(), c.positive()]);
        f.add_clause([c.negative()]);
        let kernel = f.num_clauses();
        // Padding over vars 10..30, always satisfiable (all positive).
        for _ in 0..rng.gen_range(5..30) {
            let lits: Vec<Lit> = (0..3)
                .map(|_| Var::new(10 + rng.gen_range(0..20)).positive())
                .collect();
            f.add_clause(lits);
        }
        let mut solver = Solver::from_formula(&f);
        assert_eq!(solver.solve(), SolveResult::Unsat);
        let core = solver.core_clauses().unwrap();
        assert!(
            core.iter().all(|&i| i < kernel),
            "core {core:?} leaked into padding"
        );
        let core_vars = solver.core_vars().unwrap();
        assert!(core_vars.iter().all(|v| v.index() < 3));
    }
}

#[test]
fn limits_interrupt_and_resume_reaches_same_verdict() {
    let mut rng = StdRng::seed_from_u64(0x515);
    for _ in 0..10 {
        let f = random_ksat(&mut rng, 14, 60, 3);
        let expected = {
            let mut s = Solver::from_formula(&f);
            s.solve()
        };
        // Solve in tiny conflict increments.
        let mut s = Solver::from_formula(&f);
        let mut steps = 0;
        let result = loop {
            let r = s.solve_limited(&rbmc_solver::Limits::new().with_max_conflicts(2));
            steps += 1;
            if r != SolveResult::Unknown {
                break r;
            }
            assert!(steps < 10_000, "no progress under chunked solving");
        };
        assert_eq!(result, expected);
    }
}
