//! Differential property tests: the arena-backed CDCL solver against the
//! reference oracles on random formulas, under clause-database options that
//! force arena compactions mid-search (aggressive `reduce_base`), so watch
//! rebuilding and reason relocation are exercised on every counterexample
//! candidate, not just on large instances.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rbmc_cnf::{CnfFormula, Lit, Var};
use rbmc_solver::{brute_force_sat, SolveResult, Solver, SolverOptions};

/// Strategy producing an arbitrary literal over `num_vars` variables.
fn arb_lit(num_vars: usize) -> impl Strategy<Value = Lit> {
    (0..num_vars, any::<bool>()).prop_map(|(v, neg)| Lit::new(Var::new(v), neg))
}

/// Strategy producing a random formula near the 3-SAT phase transition
/// (mixed clause widths 1..=4 to also cover units and binaries).
fn arb_formula() -> impl Strategy<Value = CnfFormula> {
    (3usize..9).prop_flat_map(|nv| {
        let clauses = nv * 4 + 2;
        prop::collection::vec(
            prop::collection::vec(arb_lit(nv), 1..=4),
            clauses..clauses + 4,
        )
        .prop_map(move |clauses| {
            let mut f = CnfFormula::with_vars(nv);
            for lits in clauses {
                f.add_clause(lits);
            }
            f
        })
    })
}

/// Options that make the solver compact its arena as early and as often as
/// possible: reduction already after two live learned clauses, growing by
/// one clause per round.
fn compaction_heavy_options() -> SolverOptions {
    SolverOptions {
        reduce_base: 2,
        reduce_inc: 1,
        ..SolverOptions::default()
    }
}

/// Full differential check of one formula under the given options.
fn check_against_oracle(f: &CnfFormula, opts: SolverOptions) -> Result<(), TestCaseError> {
    let expected_sat = brute_force_sat(f).is_some();
    let mut solver = Solver::from_formula_with(f, opts);
    match solver.solve() {
        SolveResult::Sat => {
            prop_assert!(expected_sat, "solver SAT, oracle UNSAT: {f}");
            let model = solver.model().expect("model after SAT");
            prop_assert_eq!(f.evaluate(model), Some(true), "bad model for {f}");
        }
        SolveResult::Unsat => {
            prop_assert!(!expected_sat, "solver UNSAT, oracle SAT: {f}");
            if opts.record_cdg {
                let core = solver.core_clauses().expect("core after UNSAT");
                prop_assert!(!core.is_empty());
                let sub = f.subformula(core);
                prop_assert!(
                    brute_force_sat(&sub).is_none(),
                    "satisfiable core {core:?} for {f}"
                );
            }
        }
        SolveResult::Unknown => prop_assert!(false, "unlimited solve returned Unknown"),
    }
    // With `debug-invariants` on, every counterexample candidate also gets a
    // full structural audit on top of the hooks that already ran after each
    // mid-search compaction and CDG prune.
    #[cfg(feature = "debug-invariants")]
    if let Err(e) = solver.audit() {
        return Err(TestCaseError::fail(format!("post-solve audit: {e}")));
    }
    Ok(())
}

proptest! {
    #[test]
    fn arena_solver_agrees_with_oracle_under_aggressive_reduction(f in arb_formula()) {
        check_against_oracle(&f, compaction_heavy_options())?;
    }

    #[test]
    fn arena_solver_agrees_with_oracle_without_cdg(f in arb_formula()) {
        // Same stress without CDG recording: the compaction paths must not
        // depend on the core bookkeeping.
        let opts = SolverOptions {
            record_cdg: false,
            ..compaction_heavy_options()
        };
        check_against_oracle(&f, opts)?;
    }

    #[test]
    fn aggressive_reduction_preserves_determinism(f in arb_formula()) {
        let run = |f: &CnfFormula| {
            let mut s = Solver::from_formula_with(f, compaction_heavy_options());
            let r = s.solve();
            (r, s.stats().clone(), s.core_clauses().map(<[usize]>::to_vec))
        };
        prop_assert_eq!(run(&f), run(&f), "two runs diverged on {}", f);
    }
}

/// A search-heavy UNSAT instance actually reaches the compaction path (the
/// random formulas above are small; this pins the stress down so a future
/// regression in the reduce settings cannot silently skip it).
#[test]
fn aggressive_reduction_really_compacts() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(0xA1E4A);
    let num_vars = 40;
    let mut f = CnfFormula::with_vars(num_vars);
    // At the 3-SAT phase transition: plenty of conflicts and long learned
    // clauses, so reduction has real candidates to delete.
    for _ in 0..(num_vars as f64 * 4.3) as usize {
        let lits: Vec<Lit> = (0..3)
            .map(|_| Lit::new(Var::new(rng.gen_range(0..num_vars)), rng.gen_bool(0.5)))
            .collect();
        f.add_clause(lits);
    }
    let mut solver = Solver::from_formula_with(&f, compaction_heavy_options());
    let result = solver.solve();
    let stats = solver.stats();
    assert!(
        stats.compactions > 0,
        "expected arena compactions, got none ({} conflicts)",
        stats.conflicts
    );
    assert!(stats.deleted > 0, "reduction deleted no clauses");
    if result == SolveResult::Unsat {
        let core = solver.core_clauses().expect("core after UNSAT");
        let mut check = Solver::from_formula(&f.subformula(core));
        assert_eq!(check.solve(), SolveResult::Unsat, "core must stay UNSAT");
    }
}
