//! Property-based tests for the CNF substrate.

use proptest::prelude::*;
use rbmc_cnf::{parse_dimacs, to_dimacs_string, Clause, CnfFormula, Lit, Var};

/// Strategy producing an arbitrary literal over `num_vars` variables.
fn arb_lit(num_vars: usize) -> impl Strategy<Value = Lit> {
    (0..num_vars, any::<bool>()).prop_map(|(v, neg)| Lit::new(Var::new(v), neg))
}

/// Strategy producing an arbitrary clause of up to `max_len` literals.
fn arb_clause(num_vars: usize, max_len: usize) -> impl Strategy<Value = Clause> {
    prop::collection::vec(arb_lit(num_vars), 0..=max_len).prop_map(Clause::new)
}

/// Strategy producing an arbitrary formula.
fn arb_formula() -> impl Strategy<Value = CnfFormula> {
    (1usize..20).prop_flat_map(|nv| {
        prop::collection::vec(arb_clause(nv, 6), 0..30).prop_map(move |clauses| {
            let mut f = CnfFormula::with_vars(nv);
            f.extend(clauses);
            f
        })
    })
}

proptest! {
    #[test]
    fn lit_code_roundtrip(v in 0usize..100_000, neg in any::<bool>()) {
        let lit = Lit::new(Var::new(v), neg);
        prop_assert_eq!(Lit::from_code(lit.code()), lit);
        prop_assert_eq!(Lit::from_dimacs(lit.to_dimacs()), lit);
        prop_assert_eq!(!!lit, lit);
    }

    #[test]
    fn dimacs_roundtrip_preserves_formula(f in arb_formula()) {
        let text = to_dimacs_string(&f);
        let back = parse_dimacs(&text).unwrap();
        prop_assert_eq!(&f, &back);
    }

    #[test]
    fn normalized_clause_is_equisatisfiable(c in arb_clause(8, 6), bits in any::<u8>()) {
        // Evaluate the clause and its normal form under the same assignment:
        // they must agree (a tautology is always true).
        let assignment: Vec<bool> = (0..8).map(|i| bits >> i & 1 == 1).collect();
        let original = c.evaluate(&assignment).unwrap();
        match c.normalized() {
            None => prop_assert!(original, "tautology must evaluate to true"),
            Some(n) => prop_assert_eq!(n.evaluate(&assignment).unwrap(), original),
        }
    }

    #[test]
    fn partial_agrees_with_total(c in arb_clause(8, 6), bits in any::<u8>()) {
        let total: Vec<bool> = (0..8).map(|i| bits >> i & 1 == 1).collect();
        let partial: Vec<Option<bool>> = total.iter().copied().map(Some).collect();
        prop_assert_eq!(c.evaluate_partial(&partial), c.evaluate(&total));
    }

    #[test]
    fn formula_eval_is_clause_conjunction(f in arb_formula(), bits in any::<u32>()) {
        let assignment: Vec<bool> = (0..f.num_vars()).map(|i| bits >> (i % 32) & 1 == 1).collect();
        let whole = f.evaluate(&assignment).unwrap();
        let each = f.iter().all(|c| c.evaluate(&assignment).unwrap());
        prop_assert_eq!(whole, each);
    }

    #[test]
    fn subformula_of_all_indices_is_identity(f in arb_formula()) {
        let all: Vec<usize> = (0..f.num_clauses()).collect();
        let sub = f.subformula(&all);
        prop_assert_eq!(f.clauses(), sub.clauses());
        prop_assert_eq!(f.num_vars(), sub.num_vars());
    }
}
