//! CNF substrate for the `refined-bmc` workspace.
//!
//! This crate provides the propositional-logic vocabulary shared by the SAT
//! solver (`rbmc-solver`) and the BMC engine (`rbmc-core`): typed
//! [`Var`]iables and [`Lit`]erals, [`Clause`]s, whole [`CnfFormula`]s, and
//! DIMACS reading/writing.
//!
//! # Examples
//!
//! Build the formula `(x ∨ ¬y) ∧ (y)` and evaluate it:
//!
//! ```
//! use rbmc_cnf::CnfFormula;
//!
//! let mut f = CnfFormula::new();
//! let x = f.new_var();
//! let y = f.new_var();
//! f.add_clause([x.positive(), y.negative()]);
//! f.add_clause([y.positive()]);
//!
//! // x = true, y = true satisfies both clauses.
//! assert_eq!(f.evaluate(&[true, true]), Some(true));
//! // x = false, y = false falsifies the second clause.
//! assert_eq!(f.evaluate(&[false, false]), Some(false));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod clause;
mod dimacs;
mod formula;
mod lit;

pub use clause::{Clause, ClauseView};
pub use dimacs::{parse_dimacs, to_dimacs_string, write_dimacs, ParseDimacsError};
pub use formula::{Clauses, ClausesIter, CnfFormula};
pub use lit::{Lit, Var};
