//! Clauses: disjunctions of literals.
//!
//! [`Clause`] owns its literals; [`ClauseView`] borrows them from a flat
//! [`CnfFormula`](crate::CnfFormula) store. Both expose the same clause-level
//! queries through shared slice-based helpers.

use std::fmt;
use std::ops::Deref;

use crate::Lit;

/// Evaluates a literal slice as a disjunction under a total assignment.
/// Returns `None` if any variable is out of range of `assignment`.
pub(crate) fn eval_lits(lits: &[Lit], assignment: &[bool]) -> Option<bool> {
    let mut value = false;
    for &lit in lits {
        let var_value = *assignment.get(lit.var().index())?;
        value |= lit.apply(var_value);
    }
    Some(value)
}

/// Evaluates a literal slice as a disjunction under a partial assignment
/// (out-of-range variables count as unassigned).
pub(crate) fn eval_lits_partial(lits: &[Lit], assignment: &[Option<bool>]) -> Option<bool> {
    let mut undetermined = false;
    for &lit in lits {
        match assignment.get(lit.var().index()).copied().flatten() {
            Some(value) => {
                if lit.apply(value) {
                    return Some(true);
                }
            }
            None => undetermined = true,
        }
    }
    if undetermined {
        None
    } else {
        Some(false)
    }
}

/// Returns true if the literal slice contains both phases of some variable.
pub(crate) fn lits_are_tautology(lits: &[Lit]) -> bool {
    let mut sorted: Vec<Lit> = lits.to_vec();
    sorted.sort_unstable();
    sorted.windows(2).any(|w| w[0] == !w[1])
}

/// Renders a literal slice as `(l₁ ∨ l₂ ∨ …)`, or `⊥` when empty.
pub(crate) fn fmt_lits(lits: &[Lit], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if lits.is_empty() {
        return write!(f, "⊥");
    }
    write!(f, "(")?;
    for (i, lit) in lits.iter().enumerate() {
        if i > 0 {
            write!(f, " ∨ ")?;
        }
        write!(f, "{lit}")?;
    }
    write!(f, ")")
}

/// A borrowed clause: a view into the flat literal store of a
/// [`CnfFormula`](crate::CnfFormula).
///
/// Dereferences to `[Lit]` and offers the same queries as [`Clause`], so
/// most call sites work identically on owned and borrowed clauses.
///
/// # Examples
///
/// ```
/// use rbmc_cnf::parse_dimacs;
///
/// let f = parse_dimacs("p cnf 2 1\n1 -2 0\n")?;
/// let view = f.clause(0);
/// assert_eq!(view.len(), 2);
/// assert_eq!(view.evaluate(&[true, true]), Some(true));
/// # Ok::<(), rbmc_cnf::ParseDimacsError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClauseView<'a> {
    lits: &'a [Lit],
}

impl<'a> ClauseView<'a> {
    /// Wraps a literal slice as a clause view.
    pub fn new(lits: &'a [Lit]) -> ClauseView<'a> {
        ClauseView { lits }
    }

    /// Returns the literals as a slice (with the view's full lifetime).
    pub fn lits(&self) -> &'a [Lit] {
        self.lits
    }

    /// Copies the view into an owned [`Clause`].
    pub fn to_clause(&self) -> Clause {
        Clause::new(self.lits.to_vec())
    }

    /// Returns true if the clause contains both phases of some variable.
    pub fn is_tautology(&self) -> bool {
        lits_are_tautology(self.lits)
    }

    /// Evaluates the clause under a total assignment (see
    /// [`Clause::evaluate`]).
    pub fn evaluate(&self, assignment: &[bool]) -> Option<bool> {
        eval_lits(self.lits, assignment)
    }

    /// Evaluates the clause under a partial assignment (see
    /// [`Clause::evaluate_partial`]).
    pub fn evaluate_partial(&self, assignment: &[Option<bool>]) -> Option<bool> {
        eval_lits_partial(self.lits, assignment)
    }
}

impl Deref for ClauseView<'_> {
    type Target = [Lit];

    fn deref(&self) -> &[Lit] {
        self.lits
    }
}

impl AsRef<[Lit]> for ClauseView<'_> {
    fn as_ref(&self) -> &[Lit] {
        self.lits
    }
}

impl PartialEq<Clause> for ClauseView<'_> {
    fn eq(&self, other: &Clause) -> bool {
        self.lits == other.lits()
    }
}

impl PartialEq<ClauseView<'_>> for Clause {
    fn eq(&self, other: &ClauseView<'_>) -> bool {
        self.lits() == other.lits
    }
}

impl fmt::Debug for ClauseView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.lits.iter()).finish()
    }
}

impl fmt::Display for ClauseView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_lits(self.lits, f)
    }
}

/// A disjunction of literals.
///
/// `Clause` is a thin wrapper over `Vec<Lit>` that adds clause-level queries
/// (tautology detection, normalization, evaluation). It dereferences to
/// `[Lit]`, so all slice methods are available.
///
/// # Examples
///
/// ```
/// use rbmc_cnf::{Clause, Var};
///
/// let x = Var::new(0);
/// let y = Var::new(1);
/// let c = Clause::new(vec![x.positive(), y.negative(), x.positive()]);
/// assert_eq!(c.len(), 3);
/// let n = c.normalized().expect("not a tautology");
/// assert_eq!(n.len(), 2); // duplicate removed
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Creates a clause from literals, preserving order and duplicates.
    pub fn new(lits: Vec<Lit>) -> Clause {
        Clause { lits }
    }

    /// The empty clause (always false). In a resolution proof this is the
    /// final conflict.
    pub fn empty() -> Clause {
        Clause { lits: Vec::new() }
    }

    /// Returns the literals as a slice.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Consumes the clause and returns the underlying literal vector.
    pub fn into_lits(self) -> Vec<Lit> {
        self.lits
    }

    /// Returns true if the clause contains both phases of some variable and
    /// is therefore always satisfied.
    ///
    /// # Examples
    ///
    /// ```
    /// use rbmc_cnf::{Clause, Var};
    ///
    /// let x = Var::new(0);
    /// assert!(Clause::new(vec![x.positive(), x.negative()]).is_tautology());
    /// assert!(!Clause::new(vec![x.positive()]).is_tautology());
    /// ```
    pub fn is_tautology(&self) -> bool {
        lits_are_tautology(&self.lits)
    }

    /// Returns a sorted, duplicate-free copy, or `None` if the clause is a
    /// tautology (and thus can be dropped from any formula).
    pub fn normalized(&self) -> Option<Clause> {
        let mut sorted: Vec<Lit> = self.lits.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.windows(2).any(|w| w[0] == !w[1]) {
            None
        } else {
            Some(Clause { lits: sorted })
        }
    }

    /// Evaluates the clause under a (possibly partial) assignment.
    ///
    /// `assignment[v]` is the value of variable `v`, or `None` if unassigned.
    /// Returns `Some(true)` as soon as any literal is satisfied, `Some(false)`
    /// if every literal is falsified, and `None` otherwise (undetermined).
    ///
    /// Variables with indices beyond the end of `assignment` are treated as
    /// unassigned.
    pub fn evaluate_partial(&self, assignment: &[Option<bool>]) -> Option<bool> {
        eval_lits_partial(&self.lits, assignment)
    }

    /// Evaluates the clause under a total assignment.
    ///
    /// Returns `None` if any variable of the clause is out of range of
    /// `assignment`.
    pub fn evaluate(&self, assignment: &[bool]) -> Option<bool> {
        eval_lits(&self.lits, assignment)
    }

    /// Borrows the clause as a [`ClauseView`].
    pub fn as_view(&self) -> ClauseView<'_> {
        ClauseView::new(&self.lits)
    }
}

impl AsRef<[Lit]> for Clause {
    fn as_ref(&self) -> &[Lit] {
        &self.lits
    }
}

impl Deref for Clause {
    type Target = [Lit];

    fn deref(&self) -> &[Lit] {
        &self.lits
    }
}

impl From<Vec<Lit>> for Clause {
    fn from(lits: Vec<Lit>) -> Clause {
        Clause::new(lits)
    }
}

impl<const N: usize> From<[Lit; N]> for Clause {
    fn from(lits: [Lit; N]) -> Clause {
        Clause::new(lits.to_vec())
    }
}

impl From<&[Lit]> for Clause {
    fn from(lits: &[Lit]) -> Clause {
        Clause::new(lits.to_vec())
    }
}

impl From<Lit> for Clause {
    fn from(lit: Lit) -> Clause {
        Clause::new(vec![lit])
    }
}

impl FromIterator<Lit> for Clause {
    fn from_iter<I: IntoIterator<Item = Lit>>(iter: I) -> Clause {
        Clause::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Clause {
    type Item = &'a Lit;
    type IntoIter = std::slice::Iter<'a, Lit>;

    fn into_iter(self) -> Self::IntoIter {
        self.lits.iter()
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.lits.iter()).finish()
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_lits(&self.lits, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Var;

    fn lits(ns: &[i64]) -> Vec<Lit> {
        ns.iter().map(|&n| Lit::from_dimacs(n)).collect()
    }

    #[test]
    fn empty_clause_is_false() {
        let c = Clause::empty();
        assert_eq!(c.evaluate(&[]), Some(false));
        assert_eq!(c.evaluate_partial(&[]), Some(false));
        assert_eq!(c.to_string(), "⊥");
    }

    #[test]
    fn tautology_detection() {
        assert!(Clause::new(lits(&[1, 2, -1])).is_tautology());
        assert!(!Clause::new(lits(&[1, 2, -3])).is_tautology());
        assert!(Clause::new(lits(&[1, 2, -1])).normalized().is_none());
    }

    #[test]
    fn normalization_sorts_and_dedups() {
        let c = Clause::new(lits(&[3, 1, 3, 2, 1]));
        let n = c.normalized().unwrap();
        assert_eq!(n.lits(), lits(&[1, 2, 3]).as_slice());
    }

    #[test]
    fn partial_evaluation() {
        let c = Clause::new(lits(&[1, -2]));
        // x0 unassigned, x1 = true: undetermined.
        assert_eq!(c.evaluate_partial(&[None, Some(true)]), None);
        // x0 = true: satisfied regardless.
        assert_eq!(c.evaluate_partial(&[Some(true), None]), Some(true));
        // x0 = false, x1 = true: falsified.
        assert_eq!(c.evaluate_partial(&[Some(false), Some(true)]), Some(false));
        // Out-of-range variables count as unassigned.
        assert_eq!(c.evaluate_partial(&[Some(false)]), None);
    }

    #[test]
    fn total_evaluation() {
        let c = Clause::new(lits(&[1, -2]));
        assert_eq!(c.evaluate(&[false, true]), Some(false));
        assert_eq!(c.evaluate(&[true, true]), Some(true));
        assert_eq!(c.evaluate(&[false, false]), Some(true));
        assert_eq!(c.evaluate(&[false]), None); // x1 out of range
    }

    #[test]
    fn deref_gives_slice_ops() {
        let c = Clause::new(lits(&[1, -2, 3]));
        assert_eq!(c.len(), 3);
        assert!(c.contains(&Var::new(1).negative()));
        assert!(!c.is_empty());
    }

    #[test]
    fn display_joins_with_or() {
        let c = Clause::new(lits(&[1, -2]));
        assert_eq!(c.to_string(), "(x0 ∨ ¬x1)");
    }

    #[test]
    fn from_iterator_collects() {
        let c: Clause = lits(&[1, 2]).into_iter().collect();
        assert_eq!(c.len(), 2);
    }
}
