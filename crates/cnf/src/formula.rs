//! Whole CNF formulas, stored flat.

use std::fmt;
use std::ops::Range;

use crate::clause::ClauseView;
use crate::{Clause, Lit, Var};

/// A CNF formula: a conjunction of clauses over a dense variable range.
///
/// Clauses are stored **flat** — one contiguous literal array plus one end
/// offset per clause — so appending a clause is two `Vec` appends and cloning
/// a formula is two `memcpy`s, with no per-clause allocation. Clause access
/// goes through borrowed [`ClauseView`]s (and the [`Clauses`] range view), so
/// the familiar clause-level API is preserved without materializing owned
/// [`Clause`]s.
///
/// The formula tracks how many variables exist; [`CnfFormula::add_clause`]
/// automatically grows the range to cover the literals it sees, and
/// [`CnfFormula::new_var`] reserves a fresh variable explicitly.
///
/// # Examples
///
/// ```
/// use rbmc_cnf::CnfFormula;
///
/// let mut f = CnfFormula::new();
/// let a = f.new_var();
/// let b = f.new_var();
/// f.add_clause([a.positive(), b.positive()]);
/// f.add_clause([a.negative()]);
/// assert_eq!(f.num_vars(), 2);
/// assert_eq!(f.num_clauses(), 2);
/// assert_eq!(f.num_literals(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct CnfFormula {
    num_vars: usize,
    /// Concatenated literals of all clauses, in insertion order.
    lits: Vec<Lit>,
    /// `ends[i]` is the end offset in `lits` of clause `i` (its start is
    /// `ends[i - 1]`, or 0).
    ends: Vec<u32>,
}

impl CnfFormula {
    /// Creates an empty formula with no variables and no clauses.
    ///
    /// An empty conjunction is trivially satisfiable.
    pub fn new() -> CnfFormula {
        CnfFormula::default()
    }

    /// Creates an empty formula that already has `num_vars` variables.
    pub fn with_vars(num_vars: usize) -> CnfFormula {
        CnfFormula {
            num_vars,
            lits: Vec::new(),
            ends: Vec::new(),
        }
    }

    /// Reserves and returns a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let var = Var::new(self.num_vars);
        self.num_vars += 1;
        var
    }

    /// Grows the variable range to at least `num_vars` (no-op if the formula
    /// already has that many variables).
    pub fn ensure_vars(&mut self, num_vars: usize) {
        self.num_vars = self.num_vars.max(num_vars);
    }

    /// Returns the number of variables (the valid indices are `0..num_vars`).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Returns the number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.ends.len()
    }

    /// Returns the total number of literal occurrences over all clauses.
    ///
    /// This is the paper's "number of original literals": the dynamic
    /// configuration of §3.3 switches back to VSIDS once the number of
    /// decisions exceeds `num_literals / 64`.
    pub fn num_literals(&self) -> usize {
        self.lits.len()
    }

    /// Appends a clause, growing the variable range to cover its literals.
    ///
    /// The clause is stored as given (no normalization); an empty clause makes
    /// the formula trivially unsatisfiable. Accepts anything that exposes a
    /// literal slice: arrays, `Vec<Lit>`, [`Clause`], [`ClauseView`], …
    pub fn add_clause<C: AsRef<[Lit]>>(&mut self, clause: C) {
        let lits = clause.as_ref();
        for lit in lits {
            self.num_vars = self.num_vars.max(lit.var().index() + 1);
        }
        self.lits.extend_from_slice(lits);
        debug_assert!(self.lits.len() <= u32::MAX as usize, "formula too large");
        self.ends.push(self.lits.len() as u32);
    }

    /// The start offset of clause `index` in the flat literal array.
    #[inline]
    fn start(&self, index: usize) -> usize {
        if index == 0 {
            0
        } else {
            self.ends[index - 1] as usize
        }
    }

    /// Returns a borrowed view of the clause at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_clauses()`.
    pub fn clause(&self, index: usize) -> ClauseView<'_> {
        ClauseView::new(&self.lits[self.start(index)..self.ends[index] as usize])
    }

    /// Iterates over the clauses in insertion order.
    pub fn iter(&self) -> ClausesIter<'_> {
        self.clauses().into_iter()
    }

    /// Returns a range view over all clauses.
    pub fn clauses(&self) -> Clauses<'_> {
        self.clauses_in(0..self.num_clauses())
    }

    /// Returns a range view over the clauses at `range` (insertion order).
    ///
    /// This lends contiguous clause runs without copying — the zero-copy
    /// path incremental consumers (the unroller's frame cache) are built on.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn clauses_in(&self, range: Range<usize>) -> Clauses<'_> {
        let base = self.start(range.start) as u32;
        Clauses {
            lits: &self.lits,
            ends: &self.ends[range],
            base,
        }
    }

    /// Evaluates the formula under a total assignment (`assignment[v]` is the
    /// value of variable `v`).
    ///
    /// Returns `None` if `assignment` is shorter than [`Self::num_vars`] or
    /// mentions none for a used variable.
    pub fn evaluate(&self, assignment: &[bool]) -> Option<bool> {
        let mut value = true;
        for clause in self {
            value &= clause.evaluate(assignment)?;
        }
        Some(value)
    }

    /// Evaluates the formula under a partial assignment.
    ///
    /// Returns `Some(false)` if some clause is falsified, `Some(true)` if all
    /// clauses are satisfied, and `None` otherwise.
    pub fn evaluate_partial(&self, assignment: &[Option<bool>]) -> Option<bool> {
        let mut all_true = true;
        for clause in self {
            match clause.evaluate_partial(assignment) {
                Some(false) => return Some(false),
                Some(true) => {}
                None => all_true = false,
            }
        }
        if all_true {
            Some(true)
        } else {
            None
        }
    }

    /// Returns the sub-formula formed by the clauses at the given indices,
    /// over the same variable range.
    ///
    /// This is how an unsatisfiable core (a set of original clause indices
    /// reported by the solver) is turned back into a formula, e.g. to re-check
    /// that the core alone is unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subformula(&self, clause_indices: &[usize]) -> CnfFormula {
        let mut sub = CnfFormula::with_vars(self.num_vars);
        for &i in clause_indices {
            sub.add_clause(self.clause(i));
        }
        sub
    }

    /// Iterates over every distinct variable mentioned in some clause.
    pub fn used_vars(&self) -> Vec<Var> {
        let mut seen = vec![false; self.num_vars];
        for lit in &self.lits {
            seen[lit.var().index()] = true;
        }
        seen.iter()
            .enumerate()
            .filter(|&(_, &s)| s)
            .map(|(i, _)| Var::new(i))
            .collect()
    }
}

impl<'a> IntoIterator for &'a CnfFormula {
    type Item = ClauseView<'a>;
    type IntoIter = ClausesIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl Extend<Clause> for CnfFormula {
    fn extend<I: IntoIterator<Item = Clause>>(&mut self, iter: I) {
        for clause in iter {
            self.add_clause(clause);
        }
    }
}

impl FromIterator<Clause> for CnfFormula {
    fn from_iter<I: IntoIterator<Item = Clause>>(iter: I) -> CnfFormula {
        let mut f = CnfFormula::new();
        f.extend(iter);
        f
    }
}

impl fmt::Debug for CnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CnfFormula")
            .field("num_vars", &self.num_vars)
            .field("clauses", &self.clauses())
            .finish()
    }
}

impl fmt::Display for CnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ends.is_empty() {
            return write!(f, "⊤");
        }
        for (i, clause) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{clause}")?;
        }
        Ok(())
    }
}

/// A borrowed, contiguous run of clauses inside a [`CnfFormula`].
///
/// Compares by clause content (not by position in the parent formula), so two
/// views over different formulas are equal iff they hold the same clauses.
///
/// # Examples
///
/// ```
/// use rbmc_cnf::parse_dimacs;
///
/// let f = parse_dimacs("p cnf 3 3\n1 0\n2 3 0\n-1 0\n")?;
/// let mid = f.clauses_in(1..3);
/// assert_eq!(mid.len(), 2);
/// assert_eq!(mid.get(0), f.clause(1));
/// # Ok::<(), rbmc_cnf::ParseDimacsError>(())
/// ```
#[derive(Clone, Copy)]
pub struct Clauses<'a> {
    /// The parent formula's full literal array.
    lits: &'a [Lit],
    /// End offsets of the clauses in this run.
    ends: &'a [u32],
    /// Start offset of the first clause in the run.
    base: u32,
}

impl<'a> Clauses<'a> {
    /// Number of clauses in the run.
    pub fn len(&self) -> usize {
        self.ends.len()
    }

    /// Whether the run holds no clauses.
    pub fn is_empty(&self) -> bool {
        self.ends.is_empty()
    }

    /// The `i`-th clause of the run.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> ClauseView<'a> {
        let start = if i == 0 { self.base } else { self.ends[i - 1] } as usize;
        ClauseView::new(&self.lits[start..self.ends[i] as usize])
    }

    /// Iterates over the clauses of the run.
    pub fn iter(&self) -> ClausesIter<'a> {
        ClausesIter {
            lits: self.lits,
            ends: self.ends.iter(),
            start: self.base,
        }
    }
}

impl PartialEq for Clauses<'_> {
    fn eq(&self, other: &Clauses<'_>) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for Clauses<'_> {}

impl fmt::Debug for Clauses<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<'a> IntoIterator for Clauses<'a> {
    type Item = ClauseView<'a>;
    type IntoIter = ClausesIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<'a> IntoIterator for &Clauses<'a> {
    type Item = ClauseView<'a>;
    type IntoIter = ClausesIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the clauses of a [`Clauses`] run (and of a whole
/// [`CnfFormula`]).
#[derive(Clone, Debug)]
pub struct ClausesIter<'a> {
    lits: &'a [Lit],
    ends: std::slice::Iter<'a, u32>,
    start: u32,
}

impl<'a> Iterator for ClausesIter<'a> {
    type Item = ClauseView<'a>;

    fn next(&mut self) -> Option<ClauseView<'a>> {
        let &end = self.ends.next()?;
        let start = self.start as usize;
        self.start = end;
        Some(ClauseView::new(&self.lits[start..end as usize]))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.ends.size_hint()
    }
}

impl ExactSizeIterator for ClausesIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn clause(ns: &[i64]) -> Clause {
        ns.iter().map(|&n| Lit::from_dimacs(n)).collect()
    }

    #[test]
    fn empty_formula_is_true() {
        let f = CnfFormula::new();
        assert_eq!(f.evaluate(&[]), Some(true));
        assert_eq!(f.to_string(), "⊤");
    }

    #[test]
    fn add_clause_grows_vars() {
        let mut f = CnfFormula::new();
        f.add_clause(clause(&[5]));
        assert_eq!(f.num_vars(), 5);
        f.add_clause(clause(&[-2]));
        assert_eq!(f.num_vars(), 5);
    }

    #[test]
    fn ensure_vars_only_grows() {
        let mut f = CnfFormula::with_vars(3);
        f.ensure_vars(7);
        assert_eq!(f.num_vars(), 7);
        f.ensure_vars(2);
        assert_eq!(f.num_vars(), 7);
    }

    #[test]
    fn literal_count_accumulates() {
        let mut f = CnfFormula::new();
        f.add_clause(clause(&[1, 2, 3]));
        f.add_clause(clause(&[-1, -2]));
        assert_eq!(f.num_literals(), 5);
    }

    #[test]
    fn evaluation_conjunction() {
        let mut f = CnfFormula::new();
        f.add_clause(clause(&[1, 2]));
        f.add_clause(clause(&[-1, 2]));
        assert_eq!(f.evaluate(&[true, true]), Some(true));
        assert_eq!(f.evaluate(&[true, false]), Some(false));
        assert_eq!(f.evaluate(&[false, false]), Some(false));
    }

    #[test]
    fn partial_evaluation_three_valued() {
        let mut f = CnfFormula::new();
        f.add_clause(clause(&[1, 2]));
        f.add_clause(clause(&[-1]));
        assert_eq!(f.evaluate_partial(&[Some(true), None]), Some(false));
        assert_eq!(f.evaluate_partial(&[Some(false), None]), None);
        assert_eq!(f.evaluate_partial(&[Some(false), Some(true)]), Some(true));
    }

    #[test]
    fn subformula_selects_clauses() {
        let mut f = CnfFormula::new();
        f.add_clause(clause(&[1]));
        f.add_clause(clause(&[2]));
        f.add_clause(clause(&[3]));
        let sub = f.subformula(&[0, 2]);
        assert_eq!(sub.num_clauses(), 2);
        assert_eq!(sub.num_vars(), f.num_vars());
        assert_eq!(sub.clause(0), f.clause(0));
        assert_eq!(sub.clause(1), f.clause(2));
    }

    #[test]
    fn used_vars_skips_unused() {
        let mut f = CnfFormula::with_vars(4);
        f.add_clause(clause(&[1, 3]));
        let used = f.used_vars();
        assert_eq!(used, vec![Var::new(0), Var::new(2)]);
    }

    #[test]
    fn collect_from_clauses() {
        let f: CnfFormula = vec![clause(&[1]), clause(&[-1, 2])].into_iter().collect();
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.num_vars(), 2);
    }

    #[test]
    fn clause_ranges_lend_contiguous_runs() {
        let mut f = CnfFormula::new();
        f.add_clause(clause(&[1]));
        f.add_clause(clause(&[2, 3]));
        f.add_clause(clause(&[-3]));
        let all = f.clauses();
        assert_eq!(all.len(), 3);
        let tail = f.clauses_in(1..3);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail.get(0).lits(), f.clause(1).lits());
        assert_eq!(tail.get(1).lits(), f.clause(2).lits());
        let collected: Vec<usize> = tail.iter().map(|c| c.len()).collect();
        assert_eq!(collected, vec![2, 1]);
        // Empty range at either end.
        assert!(f.clauses_in(0..0).is_empty());
        assert!(f.clauses_in(3..3).is_empty());
    }

    #[test]
    fn clauses_compare_by_content() {
        let mut f = CnfFormula::new();
        f.add_clause(clause(&[1, 2]));
        f.add_clause(clause(&[1, 2]));
        // Same clause at different offsets: content-equal views.
        assert_eq!(f.clauses_in(0..1), f.clauses_in(1..2));
        let mut g = CnfFormula::new();
        g.add_clause(clause(&[1, 2]));
        assert_eq!(f.clauses_in(0..1), g.clauses());
        assert_ne!(f.clauses(), g.clauses());
    }

    #[test]
    fn flat_clone_preserves_equality() {
        let mut f = CnfFormula::new();
        f.add_clause(clause(&[1, -2, 3]));
        f.add_clause(clause(&[]));
        let g = f.clone();
        assert_eq!(f, g);
        assert_eq!(g.clause(1).len(), 0);
    }
}
