//! Whole CNF formulas.

use std::fmt;

use crate::{Clause, Var};

#[cfg(test)]
use crate::Lit;

/// A CNF formula: a conjunction of [`Clause`]s over a dense variable range.
///
/// The formula tracks how many variables exist; [`CnfFormula::add_clause`]
/// automatically grows the range to cover the literals it sees, and
/// [`CnfFormula::new_var`] reserves a fresh variable explicitly.
///
/// # Examples
///
/// ```
/// use rbmc_cnf::CnfFormula;
///
/// let mut f = CnfFormula::new();
/// let a = f.new_var();
/// let b = f.new_var();
/// f.add_clause([a.positive(), b.positive()]);
/// f.add_clause([a.negative()]);
/// assert_eq!(f.num_vars(), 2);
/// assert_eq!(f.num_clauses(), 2);
/// assert_eq!(f.num_literals(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Clause>,
    num_literals: usize,
}

impl CnfFormula {
    /// Creates an empty formula with no variables and no clauses.
    ///
    /// An empty conjunction is trivially satisfiable.
    pub fn new() -> CnfFormula {
        CnfFormula::default()
    }

    /// Creates an empty formula that already has `num_vars` variables.
    pub fn with_vars(num_vars: usize) -> CnfFormula {
        CnfFormula {
            num_vars,
            clauses: Vec::new(),
            num_literals: 0,
        }
    }

    /// Reserves and returns a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let var = Var::new(self.num_vars);
        self.num_vars += 1;
        var
    }

    /// Returns the number of variables (the valid indices are `0..num_vars`).
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Returns the number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Returns the total number of literal occurrences over all clauses.
    ///
    /// This is the paper's "number of original literals": the dynamic
    /// configuration of §3.3 switches back to VSIDS once the number of
    /// decisions exceeds `num_literals / 64`.
    pub fn num_literals(&self) -> usize {
        self.num_literals
    }

    /// Appends a clause, growing the variable range to cover its literals.
    ///
    /// The clause is stored as given (no normalization); an empty clause makes
    /// the formula trivially unsatisfiable.
    pub fn add_clause<C: Into<Clause>>(&mut self, clause: C) {
        let clause = clause.into();
        for lit in clause.lits() {
            self.num_vars = self.num_vars.max(lit.var().index() + 1);
        }
        self.num_literals += clause.len();
        self.clauses.push(clause);
    }

    /// Returns the clause at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_clauses()`.
    pub fn clause(&self, index: usize) -> &Clause {
        &self.clauses[index]
    }

    /// Iterates over the clauses in insertion order.
    pub fn iter(&self) -> std::slice::Iter<'_, Clause> {
        self.clauses.iter()
    }

    /// Returns the clauses as a slice.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Evaluates the formula under a total assignment (`assignment[v]` is the
    /// value of variable `v`).
    ///
    /// Returns `None` if `assignment` is shorter than [`Self::num_vars`] or
    /// mentions none for a used variable.
    pub fn evaluate(&self, assignment: &[bool]) -> Option<bool> {
        let mut value = true;
        for clause in &self.clauses {
            value &= clause.evaluate(assignment)?;
        }
        Some(value)
    }

    /// Evaluates the formula under a partial assignment.
    ///
    /// Returns `Some(false)` if some clause is falsified, `Some(true)` if all
    /// clauses are satisfied, and `None` otherwise.
    pub fn evaluate_partial(&self, assignment: &[Option<bool>]) -> Option<bool> {
        let mut all_true = true;
        for clause in &self.clauses {
            match clause.evaluate_partial(assignment) {
                Some(false) => return Some(false),
                Some(true) => {}
                None => all_true = false,
            }
        }
        if all_true {
            Some(true)
        } else {
            None
        }
    }

    /// Returns the sub-formula formed by the clauses at the given indices,
    /// over the same variable range.
    ///
    /// This is how an unsatisfiable core (a set of original clause indices
    /// reported by the solver) is turned back into a formula, e.g. to re-check
    /// that the core alone is unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn subformula(&self, clause_indices: &[usize]) -> CnfFormula {
        let mut sub = CnfFormula::with_vars(self.num_vars);
        for &i in clause_indices {
            sub.add_clause(self.clauses[i].clone());
        }
        sub
    }

    /// Iterates over every distinct variable mentioned in some clause.
    pub fn used_vars(&self) -> Vec<Var> {
        let mut seen = vec![false; self.num_vars];
        for clause in &self.clauses {
            for lit in clause.lits() {
                seen[lit.var().index()] = true;
            }
        }
        seen.iter()
            .enumerate()
            .filter(|&(_, &s)| s)
            .map(|(i, _)| Var::new(i))
            .collect()
    }
}

impl<'a> IntoIterator for &'a CnfFormula {
    type Item = &'a Clause;
    type IntoIter = std::slice::Iter<'a, Clause>;

    fn into_iter(self) -> Self::IntoIter {
        self.clauses.iter()
    }
}

impl Extend<Clause> for CnfFormula {
    fn extend<I: IntoIterator<Item = Clause>>(&mut self, iter: I) {
        for clause in iter {
            self.add_clause(clause);
        }
    }
}

impl FromIterator<Clause> for CnfFormula {
    fn from_iter<I: IntoIterator<Item = Clause>>(iter: I) -> CnfFormula {
        let mut f = CnfFormula::new();
        f.extend(iter);
        f
    }
}

impl fmt::Debug for CnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CnfFormula")
            .field("num_vars", &self.num_vars)
            .field("clauses", &self.clauses)
            .finish()
    }
}

impl fmt::Display for CnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "⊤");
        }
        for (i, clause) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{clause}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clause(ns: &[i64]) -> Clause {
        ns.iter().map(|&n| Lit::from_dimacs(n)).collect()
    }

    #[test]
    fn empty_formula_is_true() {
        let f = CnfFormula::new();
        assert_eq!(f.evaluate(&[]), Some(true));
        assert_eq!(f.to_string(), "⊤");
    }

    #[test]
    fn add_clause_grows_vars() {
        let mut f = CnfFormula::new();
        f.add_clause(clause(&[5]));
        assert_eq!(f.num_vars(), 5);
        f.add_clause(clause(&[-2]));
        assert_eq!(f.num_vars(), 5);
    }

    #[test]
    fn literal_count_accumulates() {
        let mut f = CnfFormula::new();
        f.add_clause(clause(&[1, 2, 3]));
        f.add_clause(clause(&[-1, -2]));
        assert_eq!(f.num_literals(), 5);
    }

    #[test]
    fn evaluation_conjunction() {
        let mut f = CnfFormula::new();
        f.add_clause(clause(&[1, 2]));
        f.add_clause(clause(&[-1, 2]));
        assert_eq!(f.evaluate(&[true, true]), Some(true));
        assert_eq!(f.evaluate(&[true, false]), Some(false));
        assert_eq!(f.evaluate(&[false, false]), Some(false));
    }

    #[test]
    fn partial_evaluation_three_valued() {
        let mut f = CnfFormula::new();
        f.add_clause(clause(&[1, 2]));
        f.add_clause(clause(&[-1]));
        assert_eq!(f.evaluate_partial(&[Some(true), None]), Some(false));
        assert_eq!(f.evaluate_partial(&[Some(false), None]), None);
        assert_eq!(f.evaluate_partial(&[Some(false), Some(true)]), Some(true));
    }

    #[test]
    fn subformula_selects_clauses() {
        let mut f = CnfFormula::new();
        f.add_clause(clause(&[1]));
        f.add_clause(clause(&[2]));
        f.add_clause(clause(&[3]));
        let sub = f.subformula(&[0, 2]);
        assert_eq!(sub.num_clauses(), 2);
        assert_eq!(sub.num_vars(), f.num_vars());
        assert_eq!(sub.clause(0), f.clause(0));
        assert_eq!(sub.clause(1), f.clause(2));
    }

    #[test]
    fn used_vars_skips_unused() {
        let mut f = CnfFormula::with_vars(4);
        f.add_clause(clause(&[1, 3]));
        let used = f.used_vars();
        assert_eq!(used, vec![Var::new(0), Var::new(2)]);
    }

    #[test]
    fn collect_from_clauses() {
        let f: CnfFormula = vec![clause(&[1]), clause(&[-1, 2])].into_iter().collect();
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.num_vars(), 2);
    }
}
