//! Boolean variables and literals.

use std::fmt;
use std::ops::Not;

/// A propositional variable, identified by a dense 0-based index.
///
/// Variables are plain indices; the containing [`CnfFormula`](crate::CnfFormula)
/// or solver decides how many exist. The dense representation lets solvers use
/// variables directly as array indices.
///
/// # Examples
///
/// ```
/// use rbmc_cnf::Var;
///
/// let v = Var::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.positive().var(), v);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// The maximum supported variable index.
    pub const MAX_INDEX: usize = (u32::MAX >> 1) as usize - 1;

    /// Creates the variable with the given dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds [`Var::MAX_INDEX`].
    #[inline]
    pub fn new(index: usize) -> Var {
        assert!(index <= Var::MAX_INDEX, "variable index {index} too large");
        Var(index as u32)
    }

    /// Returns the dense 0-based index of this variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the positive-phase literal of this variable.
    #[inline]
    pub fn positive(self) -> Lit {
        Lit::new(self, false)
    }

    /// Returns the negative-phase literal of this variable.
    #[inline]
    pub fn negative(self) -> Lit {
        Lit::new(self, true)
    }

    /// Returns the literal of this variable whose phase makes it true under
    /// `value`: positive when `value` is true, negative otherwise.
    ///
    /// # Examples
    ///
    /// ```
    /// use rbmc_cnf::Var;
    ///
    /// let v = Var::new(0);
    /// assert_eq!(v.lit(true), v.positive());
    /// assert_eq!(v.lit(false), v.negative());
    /// ```
    #[inline]
    pub fn lit(self, value: bool) -> Lit {
        Lit::new(self, !value)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({})", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable together with a phase (positive or negated).
///
/// Encoded as `var_index << 1 | negated` so that the two phases of a variable
/// occupy adjacent codes; [`Lit::code`] is therefore a dense index usable for
/// per-literal tables (watch lists, scores).
///
/// # Examples
///
/// ```
/// use rbmc_cnf::{Lit, Var};
///
/// let x = Var::new(7);
/// let l = x.negative();
/// assert!(l.is_negative());
/// assert_eq!(!l, x.positive());
/// assert_eq!(Lit::from_code(l.code()), l);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// Creates a literal from a variable and a phase flag (`negated = true`
    /// gives the negative literal).
    #[inline]
    pub fn new(var: Var, negated: bool) -> Lit {
        Lit(var.0 << 1 | negated as u32)
    }

    /// Returns the underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns true if this is the negated phase of its variable.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.0 & 1 != 0
    }

    /// Returns true if this is the positive phase of its variable.
    #[inline]
    pub fn is_positive(self) -> bool {
        !self.is_negative()
    }

    /// Returns the dense code of this literal (`2 * var ± 1` style packing).
    ///
    /// Codes enumerate literals without gaps: variable `v` owns codes `2v`
    /// (positive) and `2v + 1` (negative).
    #[inline]
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a literal from the dense code produced by [`Lit::code`].
    #[inline]
    pub fn from_code(code: usize) -> Lit {
        assert!(code <= u32::MAX as usize, "literal code {code} too large");
        Lit(code as u32)
    }

    /// Parses a non-zero DIMACS integer: `n > 0` is the positive literal of
    /// variable `n - 1`, `n < 0` the negative literal of variable `-n - 1`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` (DIMACS uses 0 as the clause terminator, it does not
    /// name a literal).
    ///
    /// # Examples
    ///
    /// ```
    /// use rbmc_cnf::{Lit, Var};
    ///
    /// assert_eq!(Lit::from_dimacs(3), Var::new(2).positive());
    /// assert_eq!(Lit::from_dimacs(-1), Var::new(0).negative());
    /// ```
    #[inline]
    pub fn from_dimacs(n: i64) -> Lit {
        assert!(n != 0, "0 is not a DIMACS literal");
        let var = Var::new(n.unsigned_abs() as usize - 1);
        Lit::new(var, n < 0)
    }

    /// Returns the DIMACS integer representation (`±(index + 1)`).
    #[inline]
    pub fn to_dimacs(self) -> i64 {
        let n = self.var().index() as i64 + 1;
        if self.is_negative() {
            -n
        } else {
            n
        }
    }

    /// Evaluates the literal under a value for its variable.
    #[inline]
    pub fn apply(self, var_value: bool) -> bool {
        var_value ^ self.is_negative()
    }
}

impl Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lit({})", self.to_dimacs())
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "¬x{}", self.var().index())
        } else {
            write!(f, "x{}", self.var().index())
        }
    }
}

impl From<Var> for Lit {
    #[inline]
    fn from(var: Var) -> Lit {
        var.positive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_roundtrip() {
        for i in [0usize, 1, 17, 100_000] {
            assert_eq!(Var::new(i).index(), i);
        }
    }

    #[test]
    fn lit_phases() {
        let v = Var::new(5);
        assert!(v.positive().is_positive());
        assert!(v.negative().is_negative());
        assert_eq!(v.positive().var(), v);
        assert_eq!(v.negative().var(), v);
        assert_eq!(v.lit(true), v.positive());
        assert_eq!(v.lit(false), v.negative());
    }

    #[test]
    fn negation_is_involutive() {
        let l = Var::new(9).negative();
        assert_eq!(!!l, l);
        assert_ne!(!l, l);
        assert_eq!((!l).var(), l.var());
    }

    #[test]
    fn code_is_dense() {
        let v = Var::new(3);
        assert_eq!(v.positive().code(), 6);
        assert_eq!(v.negative().code(), 7);
        assert_eq!(Lit::from_code(6), v.positive());
        assert_eq!(Lit::from_code(7), v.negative());
    }

    #[test]
    fn dimacs_roundtrip() {
        for n in [1i64, -1, 2, -2, 17, -123_456] {
            assert_eq!(Lit::from_dimacs(n).to_dimacs(), n);
        }
    }

    #[test]
    #[should_panic(expected = "not a DIMACS literal")]
    fn dimacs_zero_panics() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn apply_respects_phase() {
        let v = Var::new(0);
        assert!(v.positive().apply(true));
        assert!(!v.positive().apply(false));
        assert!(!v.negative().apply(true));
        assert!(v.negative().apply(false));
    }

    #[test]
    fn display_forms() {
        let v = Var::new(2);
        assert_eq!(v.to_string(), "x2");
        assert_eq!(v.positive().to_string(), "x2");
        assert_eq!(v.negative().to_string(), "¬x2");
    }

    #[test]
    fn ordering_groups_phases_of_same_var() {
        let a = Var::new(1);
        let b = Var::new(2);
        assert!(a.positive() < a.negative());
        assert!(a.negative() < b.positive());
    }
}
