//! DIMACS CNF reading and writing.
//!
//! The parser accepts the common relaxed dialect: comment lines (`c …`),
//! an optional `p cnf <vars> <clauses>` header, clauses spanning multiple
//! lines, and multiple clauses per line, each terminated by `0`.

use std::error::Error;
use std::fmt;
use std::io::{self, Write};

use crate::{CnfFormula, Lit};

/// Error produced when parsing DIMACS text fails.
///
/// # Examples
///
/// ```
/// use rbmc_cnf::parse_dimacs;
///
/// let err = parse_dimacs("p cnf 2 1\n1 x 0\n").unwrap_err();
/// assert!(err.to_string().contains("line 2"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    line: usize,
    kind: ErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ErrorKind {
    BadHeader,
    BadToken(String),
    UnterminatedClause,
}

impl ParseDimacsError {
    /// The 1-based line number where the error was detected.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ErrorKind::BadHeader => {
                write!(f, "malformed problem header on line {}", self.line)
            }
            ErrorKind::BadToken(tok) => {
                write!(f, "unexpected token `{tok}` on line {}", self.line)
            }
            ErrorKind::UnterminatedClause => {
                write!(
                    f,
                    "clause not terminated by 0 at end of input (line {})",
                    self.line
                )
            }
        }
    }
}

impl Error for ParseDimacsError {}

/// Parses DIMACS CNF text into a [`CnfFormula`].
///
/// If a `p cnf` header is present its variable count is honoured as a lower
/// bound (clauses may still grow the range beyond it, as some generators
/// under-report).
///
/// # Errors
///
/// Returns [`ParseDimacsError`] on a malformed header, a non-integer token,
/// or a final clause missing its `0` terminator.
///
/// # Examples
///
/// ```
/// use rbmc_cnf::parse_dimacs;
///
/// let f = parse_dimacs("c example\np cnf 3 2\n1 -2 0\n2 3 0\n")?;
/// assert_eq!(f.num_vars(), 3);
/// assert_eq!(f.num_clauses(), 2);
/// # Ok::<(), rbmc_cnf::ParseDimacsError>(())
/// ```
pub fn parse_dimacs(text: &str) -> Result<CnfFormula, ParseDimacsError> {
    let mut formula = CnfFormula::new();
    let mut header_vars: usize = 0;
    let mut current: Vec<Lit> = Vec::new();
    let mut last_line = 0;

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        last_line = lineno;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('p') {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            let ok = fields.len() == 3 && fields[0] == "cnf";
            let vars = ok.then(|| fields[1].parse::<usize>().ok()).flatten();
            let clauses = ok.then(|| fields[2].parse::<usize>().ok()).flatten();
            match (vars, clauses) {
                (Some(v), Some(_)) => header_vars = v,
                _ => {
                    return Err(ParseDimacsError {
                        line: lineno,
                        kind: ErrorKind::BadHeader,
                    })
                }
            }
            continue;
        }
        for tok in trimmed.split_whitespace() {
            let n: i64 = tok.parse().map_err(|_| ParseDimacsError {
                line: lineno,
                kind: ErrorKind::BadToken(tok.to_string()),
            })?;
            if n == 0 {
                formula.add_clause(std::mem::take(&mut current));
            } else {
                current.push(Lit::from_dimacs(n));
            }
        }
    }

    if !current.is_empty() {
        return Err(ParseDimacsError {
            line: last_line,
            kind: ErrorKind::UnterminatedClause,
        });
    }
    // Honour the header's variable count as a lower bound.
    formula.ensure_vars(header_vars);
    Ok(formula)
}

/// Writes a formula in DIMACS CNF format.
///
/// A mutable reference to any `Write` can be passed (e.g. `&mut Vec<u8>` or a
/// file).
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
///
/// # Examples
///
/// ```
/// use rbmc_cnf::{parse_dimacs, write_dimacs};
///
/// let f = parse_dimacs("p cnf 2 1\n1 -2 0\n")?;
/// let mut out = Vec::new();
/// write_dimacs(&mut out, &f)?;
/// let text = String::from_utf8(out)?;
/// assert!(text.contains("p cnf 2 1"));
/// assert!(text.contains("1 -2 0"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_dimacs<W: Write>(mut writer: W, formula: &CnfFormula) -> io::Result<()> {
    writeln!(
        writer,
        "p cnf {} {}",
        formula.num_vars(),
        formula.num_clauses()
    )?;
    for clause in formula {
        for lit in clause.lits() {
            write!(writer, "{} ", lit.to_dimacs())?;
        }
        writeln!(writer, "0")?;
    }
    Ok(())
}

/// Renders a formula as a DIMACS string (convenience wrapper over
/// [`write_dimacs`]).
pub fn to_dimacs_string(formula: &CnfFormula) -> String {
    let mut out = Vec::new();
    write_dimacs(&mut out, formula).expect("writing to Vec cannot fail");
    String::from_utf8(out).expect("DIMACS output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_file() {
        let f = parse_dimacs("c hi\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(
            f.clause(0).lits(),
            &[Lit::from_dimacs(1), Lit::from_dimacs(-2)]
        );
    }

    #[test]
    fn parses_multiline_and_multiclause_lines() {
        let f = parse_dimacs("1 2\n-3 0 3 0\n").unwrap();
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.clause(0).len(), 3);
        assert_eq!(f.clause(1).len(), 1);
    }

    #[test]
    fn parses_empty_clause() {
        let f = parse_dimacs("p cnf 1 1\n0\n").unwrap();
        assert_eq!(f.num_clauses(), 1);
        assert!(f.clause(0).is_empty());
    }

    #[test]
    fn header_pads_variable_range() {
        let f = parse_dimacs("p cnf 10 1\n1 0\n").unwrap();
        assert_eq!(f.num_vars(), 10);
    }

    #[test]
    fn rejects_bad_header() {
        let err = parse_dimacs("p cnf x 1\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("header"));
    }

    #[test]
    fn rejects_bad_token() {
        let err = parse_dimacs("p cnf 2 1\n1 x 0\n").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains('x'));
    }

    #[test]
    fn rejects_unterminated_clause() {
        let err = parse_dimacs("p cnf 2 1\n1 2\n").unwrap_err();
        assert!(err.to_string().contains("not terminated"));
    }

    #[test]
    fn roundtrip_through_dimacs() {
        let original = parse_dimacs("p cnf 4 3\n1 -2 0\n-3 4 0\n2 0\n").unwrap();
        let text = to_dimacs_string(&original);
        let reparsed = parse_dimacs(&text).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let f = parse_dimacs("\nc one\n\nc two\n1 0\n").unwrap();
        assert_eq!(f.num_clauses(), 1);
    }
}
