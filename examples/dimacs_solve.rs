//! Use the solver standalone on DIMACS input: report SAT with a model, or
//! UNSAT with the unsatisfiable core extracted through the simplified CDG.
//!
//! Run with: `cargo run --example dimacs_solve [-- path/to/file.cnf]`
//! Without an argument, a built-in pigeonhole instance (PHP_3^4: 4 pigeons,
//! 3 holes — UNSAT) is solved.

use refined_bmc::cnf::{parse_dimacs, CnfFormula, Var};
use refined_bmc::solver::{SolveResult, Solver};

/// The pigeonhole principle PHP_{holes}^{pigeons} as CNF: every pigeon gets
/// a hole; no two pigeons share one. UNSAT whenever pigeons > holes.
fn pigeonhole(pigeons: usize, holes: usize) -> CnfFormula {
    let mut f = CnfFormula::with_vars(pigeons * holes);
    let var = |p: usize, h: usize| Var::new(p * holes + h);
    for p in 0..pigeons {
        f.add_clause((0..holes).map(|h| var(p, h).positive()).collect::<Vec<_>>());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                f.add_clause([var(p1, h).negative(), var(p2, h).negative()]);
            }
        }
    }
    f
}

fn main() {
    let formula = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            parse_dimacs(&text).unwrap_or_else(|e| panic!("parse error: {e}"))
        }
        None => {
            println!(
                "no file given; solving the built-in pigeonhole instance PHP(4 pigeons, 3 holes)"
            );
            pigeonhole(4, 3)
        }
    };
    println!(
        "formula: {} variables, {} clauses, {} literals",
        formula.num_vars(),
        formula.num_clauses(),
        formula.num_literals()
    );
    let mut solver = Solver::from_formula(&formula);
    match solver.solve() {
        SolveResult::Sat => {
            let model = solver.model().expect("model after SAT");
            println!("SAT");
            let assignment: Vec<String> = model
                .iter()
                .enumerate()
                .take(20)
                .map(|(i, &v)| format!("x{}={}", i + 1, v as u8))
                .collect();
            println!("model (first 20 vars): {}", assignment.join(" "));
        }
        SolveResult::Unsat => {
            println!("UNSAT");
            let core = solver.core_clauses().expect("core after UNSAT");
            println!(
                "unsatisfiable core: {} of {} original clauses",
                core.len(),
                formula.num_clauses()
            );
            let core_vars = solver.core_vars().expect("core vars");
            println!("variables in the core: {}", core_vars.len());
            // Double-check the core is itself UNSAT.
            let sub = formula.subformula(core);
            let mut check = Solver::from_formula(&sub);
            assert_eq!(check.solve(), SolveResult::Unsat);
            println!("core re-solve confirms UNSAT");
        }
        SolveResult::Unknown => unreachable!("no limits were set"),
    }
    let stats = solver.stats();
    println!(
        "stats: {} decisions, {} propagations, {} conflicts, {} learned ({} deleted), {} restarts",
        stats.decisions,
        stats.propagations,
        stats.conflicts,
        stats.learned,
        stats.deleted,
        stats.restarts
    );
}
