//! Multi-property verification through the AIGER front door.
//!
//! Builds a small circuit with two safety properties, serializes it to AIGER
//! (both encodings, proving they agree), re-ingests it as a
//! [`VerificationProblem`], and checks *both* properties in one incremental
//! solving session: the falsifiable one retires with a validated
//! counterexample while the other keeps sweeping to the depth bound.
//!
//! Run with `cargo run --release --example aiger_multi_prop [file.aag|file.aig]`
//! to check your own AIGER benchmark instead.

use refined_bmc::bmc::{
    BmcEngine, BmcOptions, OrderingStrategy, PropertyVerdict, VerificationProblem,
};
use refined_bmc::circuit::aiger::{write_aag, write_aig};
use refined_bmc::gens::corpus::{multi_even_counter, problem_to_aig};

fn main() {
    let bytes = match std::env::args().nth(1) {
        Some(path) => std::fs::read(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}")),
        None => {
            // The built-in specimen: a 4-bit even counter with a reachable
            // and an unreachable target (see rbmc_gens::corpus).
            let aig = problem_to_aig(&multi_even_counter());
            let ascii = write_aag(&aig);
            let binary = write_aig(&aig);
            println!(
                "built-in specimen: {} bytes ascii (aag), {} bytes binary (aig)",
                ascii.len(),
                binary.len()
            );
            binary
        }
    };

    let problem = VerificationProblem::from_aiger("specimen", &bytes)
        .unwrap_or_else(|e| panic!("not a usable AIGER file: {e}"));
    println!(
        "problem `{}`: {} registers, {} inputs, {} properties",
        problem.name(),
        problem.netlist().num_latches(),
        problem.netlist().num_inputs(),
        problem.num_properties()
    );

    let mut engine = BmcEngine::for_problem(
        problem.clone(),
        BmcOptions {
            max_depth: 12,
            strategy: OrderingStrategy::RefinedDynamic { divisor: 64 },
            ..BmcOptions::default()
        },
    );
    let run = engine.run_collecting();

    for (idx, report) in run.properties.iter().enumerate() {
        match &report.verdict {
            PropertyVerdict::Falsified { depth, trace } => {
                let valid = trace
                    .validate_against(problem.netlist(), problem.property(idx).bad())
                    .is_ok();
                println!(
                    "property b{idx} `{}`: falsified at depth {depth} \
                     (witness validates: {valid}, {} episodes)",
                    report.name, report.episodes
                );
            }
            PropertyVerdict::OpenAt { depth } => {
                println!(
                    "property b{idx} `{}`: open at depth {depth} \
                     ({} episodes, {} assumption conflicts)",
                    report.name, report.episodes, report.assumption_conflicts
                );
            }
            PropertyVerdict::Proved { depth, .. } => {
                // Plain BMC never proves; a proving engine swapped in via
                // the `Engine` trait would land here.
                println!("property b{idx} `{}`: proved at depth {depth}", report.name);
            }
            PropertyVerdict::Unknown => {
                println!("property b{idx} `{}`: unknown", report.name);
            }
        }
    }
    println!(
        "one session solver served {} solve calls over {} depths \
         ({} falsified / {} properties)",
        run.solver_stats.solve_calls,
        run.per_depth.len(),
        run.num_falsified(),
        run.properties.len()
    );
}
