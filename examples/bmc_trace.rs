//! Find a counterexample and pretty-print the trace, frame by frame.
//!
//! The model is a combination lock: the state machine only advances when the
//! 2-bit input matches the next code digit. BMC must *search* for the code —
//! the counterexample below spells it out.
//!
//! Run with: `cargo run --example bmc_trace`

use refined_bmc::bmc::{BmcEngine, BmcOptions, BmcOutcome, OrderingStrategy};
use refined_bmc::gens::families;

fn main() {
    let code: &[u8] = &[2, 0, 3, 1, 1, 2];
    let model = families::combination_lock(code, 2);
    println!(
        "model `{}`: {} registers, {} inputs; the lock opens after the code {:?}",
        model.name(),
        model.num_registers(),
        model.num_inputs(),
        code
    );

    let mut engine = BmcEngine::new(
        model,
        BmcOptions {
            max_depth: 10,
            strategy: OrderingStrategy::RefinedStatic,
            ..BmcOptions::default()
        },
    );
    match engine.run() {
        BmcOutcome::Counterexample { depth, trace } => {
            println!("\ncounterexample found at depth {depth}:");
            print!("{}", trace.render(engine.model()));
            trace
                .validate(engine.model())
                .expect("BMC traces replay successfully on the simulator");
            println!("\nreplay on the gate-level simulator confirms the violation.");
            // Decode the inputs back into code digits.
            let digits: Vec<u8> = trace
                .inputs()
                .iter()
                .take(depth)
                .map(|frame| frame.iter().enumerate().map(|(i, &b)| (b as u8) << i).sum())
                .collect();
            println!("inputs decoded as digits: {digits:?} (the code, as expected)");

            // Export the waveform for GTKWave-style viewers.
            let vcd = refined_bmc::bmc::vcd::render_vcd(engine.model(), &trace);
            let path = std::env::temp_dir().join("refined_bmc_trace.vcd");
            std::fs::write(&path, vcd).expect("write VCD");
            println!("waveform written to {}", path.display());
        }
        other => println!("unexpected outcome: {other:?}"),
    }
}
