//! Compare all four decision-ordering strategies on one model — a miniature
//! of the paper's Fig. 7 ("the improvement comes from smaller search
//! trees").
//!
//! Run with: `cargo run --release --example ordering_comparison`

use refined_bmc::bmc::{BmcEngine, BmcOptions, OrderingStrategy, SolverReuse};
use refined_bmc::gens::families;

fn main() {
    let strategies = [
        ("standard VSIDS", OrderingStrategy::Standard),
        ("refined static", OrderingStrategy::RefinedStatic),
        (
            "refined dynamic",
            OrderingStrategy::RefinedDynamic { divisor: 64 },
        ),
        ("shtrichman", OrderingStrategy::Shtrichman),
    ];
    let max_depth = 14;
    println!("model: twin shift registers (shift_twin(10)), depth bound {max_depth}\n");

    let mut tables = Vec::new();
    for (name, strategy) in strategies {
        let mut engine = BmcEngine::new(
            families::shift_twin(10),
            BmcOptions {
                max_depth,
                strategy,
                // The ordering comparison is a fresh-per-depth story: the
                // default incremental session reuses learned clauses across
                // depths, which shrinks every strategy's search tree and
                // hides the gap this example demonstrates.
                reuse: SolverReuse::Fresh,
                ..BmcOptions::default()
            },
        );
        let run = engine.run_collecting();
        println!(
            "{name:<16}: {:>7} decisions, {:>8} implications, {:>6} conflicts, {:?}",
            run.total_decisions(),
            run.total_implications(),
            run.total_conflicts(),
            run.total_time
        );
        tables.push((name, run));
    }

    println!("\nper-depth decisions (the paper's Fig. 7 left plot):");
    print!("{:>4}", "k");
    for (name, _) in &tables {
        print!("{:>18}", name);
    }
    println!();
    for k in 0..=max_depth {
        print!("{k:>4}");
        for (_, run) in &tables {
            let cell = run
                .per_depth
                .get(k)
                .map(|d| d.decisions.to_string())
                .unwrap_or_default();
            print!("{cell:>18}");
        }
        println!();
    }
}
