//! The VIS-style frontend flow: read a BLIF model, attach the property from
//! a circuit output, and model-check it — plus an AIGER export of the same
//! design.
//!
//! Run with: `cargo run --example blif_bmc [-- path/to/model.blif [output]]`
//! Without arguments a built-in two-bit arbiter with a deliberate bug is
//! checked (output `both` flags the violation).

use refined_bmc::bmc::{BmcEngine, BmcOptions, BmcOutcome, Model, OrderingStrategy};
use refined_bmc::circuit::aiger::write_aag;
use refined_bmc::circuit::blif::parse_blif;
use refined_bmc::circuit::Aig;

/// A faulty two-client arbiter in BLIF: `g0`/`g1` are granted from requests,
/// but the interlock only blocks g1 when *last cycle's* g0 was high, so
/// simultaneous fresh requests double-grant.
const BUGGY_ARBITER: &str = "\
.model buggy_arbiter
.inputs r0 r1
.outputs both
.latch g0 g0_q 0
.latch g1 g1_q 0
.names r0 g0
1 1
.names r1 g0_q g1
10 1
.names g0 g1 both
11 1
.end
";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let (text, output_name) = match args.get(1) {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            let output = args.get(2).cloned().unwrap_or_else(|| "bad".to_string());
            (text, output)
        }
        None => {
            println!("no file given; checking the built-in buggy arbiter\n{BUGGY_ARBITER}");
            (BUGGY_ARBITER.to_string(), "both".to_string())
        }
    };

    let netlist = parse_blif(&text).unwrap_or_else(|e| panic!("BLIF error: {e}"));
    println!(
        "parsed: {} inputs, {} registers, {} nodes; property output: `{output_name}`",
        netlist.num_inputs(),
        netlist.num_latches(),
        netlist.num_nodes()
    );

    // Show the AIGER view of the same design (the modern interchange format).
    let lowered = Aig::from_netlist(&netlist);
    let aag = write_aag(&lowered.aig);
    println!("\nAIGER (aag) export, first lines:");
    for line in aag.lines().take(8) {
        println!("  {line}");
    }

    let model = Model::from_output("blif_model", netlist, &output_name);
    let mut engine = BmcEngine::new(
        model,
        BmcOptions {
            max_depth: 20,
            strategy: OrderingStrategy::RefinedDynamic { divisor: 64 },
            ..BmcOptions::default()
        },
    );
    match engine.run() {
        BmcOutcome::Counterexample { depth, trace } => {
            println!("\nproperty FAILS at depth {depth}; trace:");
            print!("{}", trace.render(engine.model()));
        }
        BmcOutcome::BoundReached { depth_completed } => {
            println!("\nno violation within {depth_completed} steps");
        }
        BmcOutcome::ResourceOut { at_depth } => println!("\ngave up at depth {at_depth}"),
    }
}
