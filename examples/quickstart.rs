//! Quickstart: check an invariant on a small sequential circuit with the
//! refined decision ordering.
//!
//! Run with: `cargo run --example quickstart`

use refined_bmc::bmc::{BmcEngine, BmcOptions, BmcOutcome, Model, OrderingStrategy};
use refined_bmc::circuit::{LatchInit, Netlist};

fn main() {
    // Build the model: an 8-bit counter that only counts when `en` is high.
    // Property: "the counter never reaches 42".
    let mut netlist = Netlist::new();
    let en = netlist.add_input("en");
    let bits: Vec<_> = (0..8)
        .map(|i| netlist.add_latch(&format!("c{i}"), LatchInit::Zero))
        .collect();
    let incremented = netlist.bus_increment(&bits);
    for (&bit, &inc) in bits.iter().zip(&incremented) {
        let next = netlist.mux(en, inc, bit);
        netlist.set_next(bit, next);
    }
    let bad = netlist.bus_eq_const(&bits, 42);
    let model = Model::new("counter8", netlist, bad);

    // Run refine_order_bmc (paper Fig. 5) with the dynamic configuration.
    let mut engine = BmcEngine::new(
        model,
        BmcOptions {
            max_depth: 50,
            strategy: OrderingStrategy::RefinedDynamic { divisor: 64 },
            ..BmcOptions::default()
        },
    );
    let run = engine.run_collecting();

    match &run.outcome {
        BmcOutcome::Counterexample { depth, trace } => {
            println!("property FAILS: counterexample of length {depth}");
            println!(
                "trace validates: {:?}",
                trace.validate(engine.model()).is_ok()
            );
        }
        BmcOutcome::BoundReached { depth_completed } => {
            println!("property holds up to depth {depth_completed}");
        }
        BmcOutcome::ResourceOut { at_depth } => {
            println!("gave up at depth {at_depth}");
        }
    }
    println!(
        "work: {} decisions, {} implications, {} conflicts over {} depths in {:?}",
        run.total_decisions(),
        run.total_implications(),
        run.total_conflicts(),
        run.per_depth.len(),
        run.total_time
    );
    println!(
        "varRank after the run: {} variables carry a non-zero bmc_score",
        engine.rank().num_ranked()
    );
}
