//! Prove a property outright with k-induction (the extension the paper's
//! conclusion anticipates), instead of only refuting bounded
//! counterexamples.
//!
//! Run with: `cargo run --example induction_prove`

use refined_bmc::bmc::induction::{prove, InductionOutcome};
use refined_bmc::bmc::BmcOptions;
use refined_bmc::gens::families;

fn main() {
    // A passing property BMC alone can never settle: the guarded FIFO never
    // overflows, at ANY depth — k-induction proves it for good.
    let model = families::fifo_guarded(3);
    println!(
        "proving `{}` ({} registers) by k-induction with unique states…",
        model.name(),
        model.num_registers()
    );
    match prove(&model, 24, BmcOptions::default()) {
        InductionOutcome::Proved { k } => {
            println!("PROVED: the invariant is {k}-inductive (holds in all reachable states)");
        }
        InductionOutcome::Falsified { depth, .. } => {
            println!("falsified at depth {depth} (unexpected for this model!)");
        }
        InductionOutcome::Unknown { max_k } => {
            println!("no proof up to k = {max_k}");
        }
    }

    // And a failing property is still caught through the base case.
    let buggy = families::fifo_unguarded(2);
    println!("\nchecking `{}` the same way…", buggy.name());
    match prove(&buggy, 24, BmcOptions::default()) {
        InductionOutcome::Falsified { depth, trace } => {
            println!("FALSIFIED at depth {depth}; replaying the trace:");
            print!("{}", trace.render(&buggy));
        }
        other => println!("unexpected outcome: {other:?}"),
    }
}
