//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate re-implements exactly the subset of the `rand` 0.8
//! API the workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer ranges, and [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 (Steele, Lea, Flood — "Fast splittable
//! pseudorandom number generators", OOPSLA 2014): a 64-bit counter passed
//! through a finalizer with full period 2^64 and good equidistribution. It is
//! *not* the ChaCha12 generator of the real `StdRng`, so byte-for-byte
//! sequences differ from upstream `rand`; everything in this workspace only
//! relies on determinism per seed, which both provide.

#![warn(missing_docs)]

/// Concrete generator types (mirrors `rand::rngs`).
pub mod rngs {
    /// The standard deterministic generator: SplitMix64.
    ///
    /// Seeded via [`crate::SeedableRng::seed_from_u64`]; every instance with
    /// the same seed yields the same sequence.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// A random number generator that can be seeded from a `u64`.
///
/// Mirrors the single constructor this workspace uses from the real trait.
pub trait SeedableRng: Sized {
    /// Creates a generator whose sequence is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // Pre-advance once so that seed 0 does not start at state 0.
        let mut rng = StdRng { state: seed };
        let _ = rng.next_u64();
        rng
    }
}

impl StdRng {
    /// Returns the next 64 raw bits from the generator.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        // SplitMix64: golden-gamma increment + murmur-style finalizer.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Ranges that can be sampled uniformly to yield a `T`.
///
/// Stands in for `rand`'s `SampleUniform`/`SampleRange` machinery; only the
/// integer instantiations the workspace needs are provided. The element type
/// is a trait *parameter* (as upstream) so that it is inferred from the call
/// site's result context, letting `rng.gen_range(0..n)` unify the literal
/// range with the expected output type.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range using `rng`.
    fn sample(self, rng: &mut StdRng) -> T;
}

/// Integer types uniform sampling is implemented for (the stand-in's
/// analogue of `rand`'s `SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[start, end)`. Panics on an empty range.
    fn sample_half_open(start: Self, end: Self, rng: &mut StdRng) -> Self;
    /// Uniform sample from `[start, end]`. Panics on an empty range.
    fn sample_inclusive(start: Self, end: Self, rng: &mut StdRng) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(start: $t, end: $t, rng: &mut StdRng) -> $t {
                assert!(start < end, "cannot sample empty range");
                // Wrapping arithmetic in u64 handles signed types; modulo
                // bias is < span/2^64: irrelevant for test workloads.
                let span = (end as u64).wrapping_sub(start as u64);
                (start as u64).wrapping_add(rng.next_u64() % span) as $t
            }
            fn sample_inclusive(start: $t, end: $t, rng: &mut StdRng) -> $t {
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as u64).wrapping_add(rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_uniform!(usize, u8, u16, u32, u64, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        let (start, end) = self.into_inner();
        T::sample_inclusive(start, end, rng)
    }
}

/// User-facing sampling methods (mirrors `rand::Rng`).
pub trait Rng {
    /// Samples a value uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 uniform mantissa bits, the same construction rand uses for f64.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0i32..4);
            assert!((0..4).contains(&y));
            let z = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "some bucket never sampled: {seen:?}"
        );
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(13);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 rate off: {hits}/10000");
    }
}
