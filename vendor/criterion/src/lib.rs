//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate provides the subset of the criterion API the
//! workspace's benches use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`criterion_group!`], [`criterion_main!`] —
//! backed by a simple adaptive wall-clock timer instead of criterion's
//! statistical machinery.
//!
//! Behaviour:
//!
//! - Under `cargo bench`, each benchmark warms up once, then runs batches
//!   until [`Criterion::measurement_time`] elapses (default 500 ms) or the
//!   sample budget is exhausted, and prints `name  time: [median]`.
//! - When the binary receives `--test` (as `cargo test --benches` passes),
//!   every routine runs exactly once, so benches double as smoke tests.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How per-iteration inputs produced by `iter_batched` setups are grouped.
///
/// The stand-in timer always times routines one call at a time, so this is
/// accepted for API compatibility but does not change measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch in real criterion.
    SmallInput,
    /// Large inputs: few per batch in real criterion.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

#[derive(Clone, Copy, Debug)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    test_mode: bool,
}

impl Settings {
    fn from_env() -> Settings {
        Settings {
            sample_size: 100,
            measurement_time: Duration::from_millis(500),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

/// The benchmark manager: registers and immediately runs benchmarks.
#[derive(Debug)]
pub struct Criterion {
    settings: Settings,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            settings: Settings::from_env(),
        }
    }
}

impl Criterion {
    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Criterion {
        self.settings.measurement_time = dur;
        self
    }

    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Criterion {
        self.settings.sample_size = n;
        self
    }

    /// Runs one benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.settings, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n;
        self
    }

    /// Sets the wall-clock budget for benchmarks in this group.
    pub fn measurement_time(&mut self, dur: Duration) -> &mut Self {
        self.settings.measurement_time = dur;
        self
    }

    /// Runs one benchmark as `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, id.into()),
            self.settings,
            &mut f,
        );
        self
    }

    /// Finishes the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, settings: Settings, f: &mut F) {
    let mut bencher = Bencher {
        settings,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if settings.test_mode {
        println!("test bench {id} ... ok");
        return;
    }
    bencher.samples.sort_unstable();
    let median = bencher
        .samples
        .get(bencher.samples.len() / 2)
        .copied()
        .unwrap_or_default();
    println!(
        "{id:<40} time: [{median:?}] ({} samples)",
        bencher.samples.len()
    );
}

/// Passed to benchmark closures; times the routine they hand it.
#[derive(Debug)]
pub struct Bencher {
    settings: Settings,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, called with no per-iteration setup.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.iter_batched(|| (), |()| routine(), BatchSize::PerIteration);
    }

    /// Times `routine` on fresh inputs built by `setup`; only the routine
    /// (not the setup) is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.settings.test_mode {
            let input = setup();
            let out = routine(input);
            drop(out);
            return;
        }
        // One untimed warmup to populate caches and allocators.
        let out = routine(setup());
        drop(out);
        let deadline = Instant::now() + self.settings.measurement_time;
        for _ in 0..self.settings.sample_size {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            let elapsed = start.elapsed();
            drop(out);
            self.samples.push(elapsed);
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Declares a function that runs the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_batched_runs_and_records() {
        let mut c = Criterion {
            settings: Settings {
                sample_size: 5,
                measurement_time: Duration::from_millis(50),
                test_mode: false,
            },
        };
        let mut calls = 0u32;
        c.bench_function("smoke", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::SmallInput);
        });
        c.bench_function("counted", |b| {
            b.iter(|| calls += 1);
        });
        assert!(calls >= 2, "warmup + at least one sample, got {calls}");
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion {
            settings: Settings {
                sample_size: 2,
                measurement_time: Duration::from_millis(10),
                test_mode: true,
            },
        };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .bench_function("one", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
