//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate re-implements the subset of the proptest API the
//! workspace's property tests use:
//!
//! - the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`,
//!   [`strategy::Just`], tuple and integer-range strategies, and
//!   [`strategy::Union`] (backing the [`prop_oneof!`] macro);
//! - [`arbitrary::any`] for primitive types;
//! - [`collection::vec`] with proptest-style size ranges;
//! - the [`proptest!`], [`prop_assert!`], and [`prop_assert_eq!`] macros and
//!   a deterministic [`test_runner::TestRunner`].
//!
//! Differences from the real crate, deliberately accepted for an offline
//! test harness: generation is driven by a fixed-seed SplitMix64 stream (so
//! every run explores the same cases — fully reproducible CI), and failing
//! inputs are reported but **not shrunk**. The assertion macros and the
//! strategy combinators preserve upstream semantics, so these tests run
//! unchanged against the real proptest when a registry is available.

#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies and combinators.

    use super::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    ///
    /// Mirrors proptest's trait of the same name, minus shrinking: a
    /// strategy here is just a composable random generator.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Returns a strategy whose values are `f` applied to this
        /// strategy's values.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Returns a strategy that generates a value, feeds it to `f` to
        /// obtain a second strategy, and generates from that.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value. See [`Strategy`].
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Result of [`Strategy::prop_flat_map`].
    #[derive(Clone, Copy, Debug)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice among several strategies with a common value type;
    /// the engine behind [`crate::prop_oneof!`].
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `options`. Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len());
            self.options[idx].generate(rng)
        }
    }

    impl<T> std::fmt::Debug for Union<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Union")
                .field("options", &self.options.len())
                .finish()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u8, u16, u32, u64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! Canonical strategies for primitive types.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy, produced by [`any`].
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    /// Returns the canonical strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Strategies for collections.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// An inclusive bound on generated collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min;
            let len = self.size.min + rng.below(span + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Deterministic case generation and execution.

    use super::strategy::Strategy;
    use std::fmt;

    /// The generator driving all strategies: SplitMix64 with a fixed seed
    /// per test, so runs are reproducible.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator for the given seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed.wrapping_add(0x1234_5678_9ABC_DEF0),
            }
        }

        /// Returns the next 64 raw bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform sample in `0..bound`. Panics if `bound` is zero.
        #[inline]
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "below(0)");
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Runner configuration (the `ProptestConfig` of the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A default configuration with the case count replaced by `cases`.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// A test-case failure raised by `prop_assert!` and friends.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> TestCaseError {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.message.fmt(f)
        }
    }

    /// A whole-test failure: the first failing case, with its input.
    #[derive(Clone, Debug)]
    pub struct TestError {
        case_index: u32,
        input: String,
        message: String,
    }

    impl fmt::Display for TestError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(
                f,
                "proptest case {} failed: {}\ninput: {}\n(no shrinking in the vendored proptest stand-in)",
                self.case_index, self.message, self.input
            )
        }
    }

    impl std::error::Error for TestError {}

    /// Runs a strategy against a test closure for `Config::cases` cases.
    #[derive(Debug)]
    pub struct TestRunner {
        config: Config,
        rng: TestRng,
    }

    impl TestRunner {
        /// Creates a runner with a fixed generation seed.
        pub fn new(config: Config) -> TestRunner {
            TestRunner {
                config,
                rng: TestRng::new(0x0DAC_2004),
            }
        }

        /// Generates `config.cases` inputs from `strategy` and applies
        /// `test` to each, stopping at the first failure.
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F) -> Result<(), TestError>
        where
            S: Strategy,
            S::Value: fmt::Debug,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            for case_index in 0..self.config.cases {
                let input = strategy.generate(&mut self.rng);
                let repr = format!("{input:?}");
                if let Err(e) = test(input) {
                    return Err(TestError {
                        case_index,
                        input: repr,
                        message: e.to_string(),
                    });
                }
            }
            Ok(())
        }
    }
}

/// Everything a property-test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Declares property tests.
///
/// Supports the subset of the real macro's grammar this workspace uses: an
/// optional leading `#![proptest_config(...)]`, then `#[test]` functions
/// whose arguments are `name in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                let strategy = ($($strategy,)+);
                let outcome = runner.run(&strategy, |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
                if let ::core::result::Result::Err(e) = outcome {
                    ::core::panic!("{}", e);
                }
            }
        )*
    };
}

/// Uniform choice among several strategies producing the same value type.
///
/// Supports the unweighted form only (`prop_oneof![s1, s2, ...]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", ::core::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: `{left:?}`\n right: `{right:?}`"
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `left == right`\n  left: `{left:?}`\n right: `{right:?}`: {}",
                    ::std::format!($($fmt)+),
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_is_deterministic() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::new(1);
        let mut b = crate::test_runner::TestRng::new(1);
        let s = (0usize..100, any::<bool>());
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    fn union_samples_every_option() {
        use crate::strategy::Strategy;
        let s = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut rng = crate::test_runner::TestRng::new(9);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&x| x), "missing branch: {seen:?}");
    }

    #[test]
    fn vec_respects_size_bounds() {
        use crate::strategy::Strategy;
        let s = prop::collection::vec(0usize..5, 2..=6);
        let mut rng = crate::test_runner::TestRng::new(3);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..=6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_end_to_end(x in 0usize..10, flip in any::<bool>()) {
            prop_assert!(x < 10);
            let y = if flip { x + 1 } else { x + 2 };
            prop_assert_eq!(y - x, if flip { 1 } else { 2 }, "x {} / y {} disagree", x, y);
        }
    }

    proptest! {
        #[test]
        fn flat_map_composes(v in (1usize..5).prop_flat_map(|n| prop::collection::vec(0usize..n, n..n + 1))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }
}
